"""Tests for repro.core.psi_state (the matrix-free iteration core).

The implicit state must behave exactly like the dense one through every
operation the decision solvers perform — matvec, add_delta, lambda_max,
densify — while never materialising an ``(m, m)`` matrix unless
``densify()`` is explicitly called, and the factory must select the
implicit state only when the oracle/collection combination makes it
semantically safe.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidProblemError
from repro.linalg.psd import random_psd
from repro.operators import ConstraintCollection, FactorizedPSDOperator
from repro.core.dotexp import ExactDotExpOracle, FastDotExpOracle
from repro.core.psi_state import (
    DensePsiState,
    ImplicitPsiState,
    make_psi_state,
)

from helpers import factorized_family


def _collection(seed=0, n=8, m=24, rank=2, scale=0.4):
    return factorized_family(seed, n=n, m=m, rank=rank, scale=scale)


def _dense_collection(seed=1, n=4, m=10):
    rng = np.random.default_rng(seed)
    return ConstraintCollection([random_psd(m, rng=rng, scale=0.5) for _ in range(n)])


def _reference_psi(coll, x):
    return sum(w * op.to_dense() for w, op in zip(x, coll.operators))


class TestDensePsiState:
    def test_matches_weighted_sum(self):
        coll = _collection()
        x0 = np.random.default_rng(2).random(len(coll))
        state = DensePsiState(coll, x0)
        np.testing.assert_allclose(state.densify(), _reference_psi(coll, x0), atol=1e-12)
        np.testing.assert_array_equal(state.oracle_psi(), state.densify())

    def test_add_delta_matches_seed_arithmetic(self):
        coll = _collection(seed=3)
        x0 = np.random.default_rng(4).random(len(coll))
        state = DensePsiState(coll, x0)
        psi = coll.weighted_sum(x0)
        delta = np.zeros(len(coll))
        delta[2] = 0.3
        work = state.add_delta(delta, mask=delta > 0)
        psi = psi + coll.weighted_sum(delta)
        np.testing.assert_array_equal(state.densify(), psi)
        np.testing.assert_allclose(state.x, x0 + delta)
        assert work > 0

    def test_lambda_max_matches_eigvalsh(self):
        coll = _collection(seed=5)
        x0 = np.random.default_rng(6).random(len(coll))
        state = DensePsiState(coll, x0)
        value, work = state.lambda_max()
        exact = float(np.linalg.eigvalsh(_reference_psi(coll, x0))[-1])
        assert value == pytest.approx(exact, rel=1e-9)
        assert work > 0
        assert state.lambda_max_calls == 1
        assert state.densify_count == 0  # dense psi exists by construction

    def test_matvec(self):
        coll = _collection(seed=7)
        x0 = np.random.default_rng(8).random(len(coll))
        state = DensePsiState(coll, x0)
        block = np.random.default_rng(9).standard_normal((coll.dim, 3))
        np.testing.assert_allclose(
            state.matvec(block), _reference_psi(coll, x0) @ block, atol=1e-12
        )
        assert state.matvec_count == 1


class TestImplicitPsiState:
    def test_matvec_matches_dense(self):
        coll = _collection(seed=10)
        x0 = np.random.default_rng(11).random(len(coll))
        state = ImplicitPsiState(coll, x0)
        block = np.random.default_rng(12).standard_normal((coll.dim, 4))
        np.testing.assert_allclose(
            state.matvec(block), _reference_psi(coll, x0) @ block, atol=1e-12
        )
        assert state.matvec_count == 1
        assert state.densify_count == 0

    def test_add_delta_tracks_x_only(self):
        coll = _collection(seed=13)
        x0 = np.random.default_rng(14).random(len(coll))
        state = ImplicitPsiState(coll, x0)
        delta = np.zeros(len(coll))
        delta[1] = 0.5
        work = state.add_delta(delta)
        assert work == pytest.approx(len(coll))
        np.testing.assert_allclose(state.x, x0 + delta)
        block = np.random.default_rng(15).standard_normal(coll.dim)
        np.testing.assert_allclose(
            state.matvec(block), _reference_psi(coll, x0 + delta) @ block, atol=1e-12
        )

    def test_densify_is_lazy_cached_and_invalidated(self):
        coll = _collection(seed=16)
        x0 = np.random.default_rng(17).random(len(coll))
        state = ImplicitPsiState(coll, x0)
        assert state.densify_count == 0
        first = state.densify()
        np.testing.assert_allclose(first, _reference_psi(coll, x0), atol=1e-12)
        assert state.densify_count == 1
        # Cached: a second read performs no new materialisation.
        assert state.densify() is first
        assert state.densify_count == 1
        # add_delta invalidates the cache; the next densify recomputes.
        delta = np.zeros(len(coll))
        delta[0] = 0.2
        state.add_delta(delta)
        second = state.densify()
        assert state.densify_count == 2
        np.testing.assert_allclose(second, _reference_psi(coll, x0 + delta), atol=1e-12)

    @pytest.mark.parametrize("m", [24, 96])
    def test_lambda_max_matches_dense_state(self, m):
        # Both the tiny (eigvalsh) and the Lanczos regime must agree with
        # the dense state's estimate to certificate accuracy.
        coll_a = _collection(seed=18, m=m, n=8)
        coll_b = _collection(seed=18, m=m, n=8)
        x0 = np.random.default_rng(19).random(8)
        implicit = ImplicitPsiState(coll_a, x0, eig_rng=np.random.default_rng(1))
        dense = DensePsiState(coll_b, x0, eig_rng=np.random.default_rng(1))
        val_i, work_i = implicit.lambda_max()
        val_d, _ = dense.lambda_max()
        assert val_i == pytest.approx(val_d, rel=1e-8, abs=1e-8)
        assert work_i > 0
        assert implicit.lambda_max_matvecs > 0

    def test_lambda_max_warm_start_carries_vector(self):
        coll = _collection(seed=20, m=96, n=8)
        x0 = np.random.default_rng(21).random(8)
        state = ImplicitPsiState(coll, x0, eig_rng=np.random.default_rng(2))
        state.lambda_max()
        assert state._eig_vector is not None
        first_sweeps = state.lambda_max_matvecs
        # A mild weight perturbation keeps the dominant direction close, so
        # the warm-started call must not exceed the cold sweep count.
        delta = np.zeros(8)
        delta[3] = 0.01 * x0[3]
        state.add_delta(delta)
        state.lambda_max()
        assert state.lambda_max_matvecs - first_sweeps <= first_sweeps

    def test_final_lambda_max_is_call_history_independent(self):
        # The result-build call must not depend on how many warm-started
        # history/certificate calls ran before it (history on/off may not
        # perturb the reported certificate).
        vals = []
        for warm_calls in (0, 5):
            coll = _collection(seed=22, m=96, n=8)
            state = ImplicitPsiState(coll, np.random.default_rng(23).random(8))
            for _ in range(warm_calls):
                state.lambda_max()
            vals.append(state.lambda_max(final=True)[0])
        assert vals[0] == vals[1]

    def test_requires_exact_factors(self):
        with pytest.raises(InvalidProblemError):
            ImplicitPsiState(_dense_collection(), np.full(4, 0.1))


class TestMakePsiState:
    def test_auto_selects_implicit_for_fast_oracle(self):
        coll = _collection(seed=24)
        oracle = FastDotExpOracle(coll, eps=0.1, rng=0)
        state = make_psi_state(coll, np.full(len(coll), 0.1), oracle=oracle)
        assert isinstance(state, ImplicitPsiState)
        assert state.mode == "implicit"

    def test_auto_keeps_dense_for_exact_oracle(self):
        coll = _collection(seed=25)
        oracle = ExactDotExpOracle(coll)
        state = make_psi_state(coll, np.full(len(coll), 0.1), oracle=oracle)
        assert isinstance(state, DensePsiState)

    def test_auto_keeps_dense_for_unpacked_fast_oracle(self):
        # The packed=False reference path must stay on the seed semantics.
        coll = _collection(seed=26)
        oracle = FastDotExpOracle(coll, eps=0.1, rng=0, packed=False)
        state = make_psi_state(coll, np.full(len(coll), 0.1), oracle=oracle)
        assert isinstance(state, DensePsiState)

    def test_auto_keeps_dense_for_inexact_factors(self):
        coll = _dense_collection()
        oracle = FastDotExpOracle(coll, eps=0.1, rng=0)
        state = make_psi_state(coll, np.full(len(coll), 0.1), oracle=oracle)
        assert isinstance(state, DensePsiState)

    def test_auto_keeps_dense_for_protocol_oracles_without_attribute(self):
        class CustomOracle:
            pass

        coll = _collection(seed=27)
        state = make_psi_state(coll, np.full(len(coll), 0.1), oracle=CustomOracle())
        assert isinstance(state, DensePsiState)

    def test_forced_modes(self):
        coll = _collection(seed=28)
        x0 = np.full(len(coll), 0.1)
        assert isinstance(make_psi_state(coll, x0, mode="dense"), DensePsiState)
        assert isinstance(make_psi_state(coll, x0, mode="implicit"), ImplicitPsiState)
        with pytest.raises(InvalidProblemError):
            make_psi_state(coll, x0, mode="bogus")
        with pytest.raises(InvalidProblemError):
            make_psi_state(_dense_collection(), np.full(4, 0.1), mode="implicit")

    def test_stats_snapshot(self):
        coll = _collection(seed=29)
        state = make_psi_state(coll, np.full(len(coll), 0.1), mode="implicit")
        stats = state.stats()
        assert stats["mode"] == "implicit"
        assert stats["densifies"] == 0
        assert set(stats) == {
            "mode", "matvecs", "densifies", "lambda_max_calls", "lambda_max_matvecs",
        }
