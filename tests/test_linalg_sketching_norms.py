"""Tests for repro.linalg.sketching and repro.linalg.norms."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.linalg.norms import (
    frobenius_inner,
    spectral_norm,
    spectral_norm_lanczos,
    spectral_norm_power,
    trace_product,
)
from repro.linalg.psd import random_psd
from repro.linalg.sketching import (
    SketchedNormEstimator,
    gaussian_sketch,
    jl_dimension,
    sketch_columns,
)


class TestTraceProduct:
    def test_matches_trace_of_product(self, rng):
        a = random_psd(5, rng=rng)
        b = random_psd(5, rng=rng)
        assert trace_product(a, b) == pytest.approx(float(np.trace(a @ b)), rel=1e-10)

    def test_sparse_inputs(self, rng):
        a = random_psd(6, rng=rng)
        b = random_psd(6, rng=rng)
        assert trace_product(sp.csr_matrix(a), sp.csr_matrix(b)) == pytest.approx(
            trace_product(a, b), rel=1e-10
        )

    def test_mixed_sparse_dense(self, rng):
        a = random_psd(4, rng=rng)
        assert trace_product(sp.csr_matrix(a), np.eye(4)) == pytest.approx(np.trace(a), rel=1e-10)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            trace_product(np.eye(2), np.eye(3))

    def test_psd_dot_nonnegative(self, rng):
        """A . B >= 0 for PSD A, B (the fact underlying Section 2.1)."""
        for seed in range(5):
            a = random_psd(4, rng=np.random.default_rng(seed))
            b = random_psd(4, rng=np.random.default_rng(seed + 100))
            assert trace_product(a, b) >= -1e-12

    def test_frobenius_alias(self, rng):
        a = random_psd(3, rng=rng)
        assert frobenius_inner(a, a) == pytest.approx(trace_product(a, a))


class TestSpectralNorm:
    def test_power_iteration_matches_eigh(self, rng):
        mat = random_psd(8, rng=rng, scale=3.7)
        assert spectral_norm_power(mat, rng=rng) == pytest.approx(3.7, rel=1e-5)

    def test_power_iteration_callable(self, rng):
        mat = random_psd(6, rng=rng, scale=2.0)
        assert spectral_norm_power(lambda v: mat @ v, dim=6, rng=rng) == pytest.approx(2.0, rel=1e-5)

    def test_power_iteration_requires_dim_for_callable(self):
        with pytest.raises(ValueError):
            spectral_norm_power(lambda v: v)

    def test_power_iteration_zero_matrix(self):
        assert spectral_norm_power(np.zeros((4, 4))) == 0.0

    def test_lanczos_small_matrix_fallback(self, rng):
        mat = random_psd(5, rng=rng, scale=1.5)
        assert spectral_norm_lanczos(mat) == pytest.approx(1.5, rel=1e-8)

    def test_lanczos_sparse_large(self, rng):
        mat = sp.csr_matrix(random_psd(80, rank=5, rng=rng, scale=2.5))
        assert spectral_norm_lanczos(mat) == pytest.approx(2.5, rel=1e-5)

    def test_spectral_norm_dispatch(self, rng):
        mat = random_psd(10, rng=rng, scale=4.0)
        for method in ("auto", "dense", "lanczos", "power"):
            assert spectral_norm(mat, method=method) == pytest.approx(4.0, rel=1e-4)

    def test_unknown_method(self, rng):
        with pytest.raises(ValueError):
            spectral_norm(random_psd(3, rng=rng), method="magic")


class TestTopEigenvalueExtensions:
    """The E14 additions: matvec-callable Lanczos, warm starts (``v0``),
    ``return_vector``, and the measured-cost ``info`` dict."""

    def test_callable_lanczos_matches_dense(self, rng):
        from repro.linalg.norms import top_eigenvalue

        mat = random_psd(90, rng=rng, scale=2.5)
        exact = float(np.linalg.eigvalsh(mat)[-1])
        info: dict = {}
        est = top_eigenvalue(lambda v: mat @ v, dim=90, rng=rng, info=info)
        assert est == pytest.approx(exact, rel=1e-8)
        assert info["method"] == "lanczos"
        assert info["matvecs"] > 0

    def test_callable_small_dim_is_exact(self, rng):
        from repro.linalg.norms import top_eigenvalue

        mat = random_psd(12, rng=rng, scale=1.5)
        info: dict = {}
        est = top_eigenvalue(lambda v: mat @ v, dim=12, info=info)
        assert est == pytest.approx(float(np.linalg.eigvalsh(mat)[-1]))
        assert info["method"] == "eigvalsh"
        assert info["matvecs"] == 12

    def test_return_vector_is_top_eigenvector(self, rng):
        from repro.linalg.norms import top_eigenvalue

        mat = random_psd(70, rank=3, rng=rng, scale=2.0)
        value, vector = top_eigenvalue(mat, rng=rng, return_vector=True)
        assert vector is not None
        rayleigh = float(vector @ (mat @ vector)) / float(vector @ vector)
        assert rayleigh == pytest.approx(value, rel=1e-8)

    def test_warm_start_reduces_sweeps(self, rng):
        from repro.linalg.norms import top_eigenvalue

        mat = random_psd(120, rng=rng, scale=3.0)
        cold_info: dict = {}
        value, vector = top_eigenvalue(
            mat, rng=rng, return_vector=True, info=cold_info
        )
        warm_info: dict = {}
        warm = top_eigenvalue(mat, v0=vector, rng=rng, info=warm_info)
        assert warm == pytest.approx(value, rel=1e-9)
        assert warm_info["matvecs"] <= cold_info["matvecs"]

    def test_v0_validation(self, rng):
        from repro.linalg.norms import top_eigenvalue

        mat = random_psd(80, rng=rng)
        with pytest.raises(ValueError):
            top_eigenvalue(mat, v0=np.ones(3))
        # Degenerate warm starts are ignored, not fatal.
        assert top_eigenvalue(mat, v0=np.zeros(80), rng=rng) > 0

    def test_info_on_dense_matrix_paths(self, rng):
        from repro.linalg.norms import top_eigenvalue

        info: dict = {}
        top_eigenvalue(random_psd(10, rng=rng), info=info)
        assert info == {"method": "eigvalsh", "matvecs": 10}
        info_big: dict = {}
        top_eigenvalue(random_psd(90, rng=rng), rng=rng, info=info_big)
        assert info_big["method"] == "lanczos"
        assert 0 < info_big["matvecs"] < 90 * 90

    def test_sparse_matrix_input(self, rng):
        from repro.linalg.norms import top_eigenvalue

        mat = sp.csr_matrix(random_psd(90, rank=4, rng=rng, scale=2.2))
        exact = float(np.linalg.eigvalsh(mat.toarray())[-1])
        assert top_eigenvalue(mat, rng=rng) == pytest.approx(exact, rel=1e-7)

    def test_small_dim_accepts_vector_only_matvec(self, rng):
        # The matvec contract is single vectors (power iteration never
        # passed blocks); the small-dim materialisation must honour it.
        from repro.linalg.norms import top_eigenvalue

        mat = random_psd(12, rng=rng, scale=1.8)
        matvec = sp.linalg.aslinearoperator(mat).matvec  # rejects (n, n) input
        assert top_eigenvalue(matvec, dim=12) == pytest.approx(
            float(np.linalg.eigvalsh(mat)[-1])
        )

    def test_matvec_errors_propagate(self):
        # A bug inside the caller's matvec must fail loudly, not silently
        # degrade the certificate estimate to the power-iteration fallback.
        from repro.linalg.norms import top_eigenvalue

        def broken(v):
            raise RuntimeError("matvec bug")

        with pytest.raises(RuntimeError, match="matvec bug"):
            top_eigenvalue(broken, dim=80)

    def test_lanczos_value_clamped_at_zero(self):
        from repro.linalg.norms import top_eigenvalue

        assert top_eigenvalue(lambda v: np.zeros_like(v), dim=80) == 0.0


class TestJLDimension:
    def test_formula(self):
        assert jl_dimension(100, 0.5, constant=8.0) == int(np.ceil(8.0 * np.log(100) / 0.25))

    def test_monotone_in_eps(self):
        assert jl_dimension(50, 0.1) > jl_dimension(50, 0.5)

    def test_invalid_args(self):
        with pytest.raises(ValueError):
            jl_dimension(0, 0.1)
        with pytest.raises(ValueError):
            jl_dimension(10, 1.5)
        with pytest.raises(ValueError):
            jl_dimension(10, 0.1, constant=0.0)


class TestGaussianSketch:
    def test_shape_and_scaling(self, rng):
        sketch = gaussian_sketch(50, 20, rng=rng)
        assert sketch.shape == (50, 20)
        # Column norms concentrate around 1 thanks to the 1/sqrt(rows) scaling.
        norms = np.linalg.norm(sketch, axis=0)
        assert abs(float(norms.mean()) - 1.0) < 0.2

    def test_invalid_shape(self):
        with pytest.raises(ValueError):
            gaussian_sketch(0, 5)

    def test_norm_preservation_on_average(self, rng):
        vec = rng.standard_normal(30)
        estimates = []
        for seed in range(30):
            sketch = gaussian_sketch(40, 30, rng=seed)
            estimates.append(float(np.sum((sketch @ vec) ** 2)))
        assert np.mean(estimates) == pytest.approx(float(vec @ vec), rel=0.15)

    def test_sketch_columns_sparse(self, rng):
        sketch = gaussian_sketch(10, 8, rng=rng)
        mat = sp.csr_matrix(np.eye(8))
        np.testing.assert_allclose(sketch_columns(sketch, mat), sketch, atol=1e-12)


class TestSketchedNormEstimator:
    def test_estimates_match_exact_with_identity_sketch(self, rng):
        transform = rng.standard_normal((6, 6))
        estimator = SketchedNormEstimator(transform)
        factor = rng.standard_normal((6, 2))
        assert estimator.estimate(factor) == pytest.approx(float(np.sum((transform @ factor) ** 2)), rel=1e-12)

    def test_estimate_many(self, rng):
        estimator = SketchedNormEstimator(rng.standard_normal((4, 5)))
        factors = [rng.standard_normal((5, 1)) for _ in range(3)]
        batch = estimator.estimate_many(factors)
        assert batch.shape == (3,)
        for value, factor in zip(batch, factors):
            assert value == pytest.approx(estimator.estimate(factor))

    def test_rejects_1d_transform(self):
        with pytest.raises(ValueError):
            SketchedNormEstimator(np.ones(4))


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=9999))
def test_sketched_norm_concentration_property(seed):
    """Property: a JL sketch with ~eps^-2 log m rows estimates norms within ~30%."""
    rng = np.random.default_rng(seed)
    dim = 25
    factor = rng.standard_normal((dim, 3))
    exact = float(np.sum(factor * factor))
    sketch = gaussian_sketch(jl_dimension(dim, 0.3), dim, rng=seed)
    estimate = float(np.sum((sketch @ factor) ** 2))
    assert estimate == pytest.approx(exact, rel=0.45)
