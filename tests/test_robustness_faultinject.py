"""Chaos suite for the robustness subsystem (fault injection + budgets).

Every test here drives the deterministic fault injector of
:mod:`repro.robustness.faultinject` against the decision solvers and
asserts the supervision contract:

* each injected fault class recovers via the kernel-demotion ladder to the
  *identical* fixed-seed certified decision, with the event recorded in
  ``result.metadata["recovery_events"]`` and ``status == DEGRADED``;
* solve budgets (wall-clock / iteration / recovery caps) turn exhaustion
  into a best-effort ``DecisionResult`` with an explicit
  :class:`~repro.core.result.SolveStatus` instead of raising or hanging;
* input hardening rejects non-finite data at construction time.

``REPRO_CHAOS_SEED`` (environment) re-seeds the injector's corrupted-entry
draws so CI can run the suite under several seeds.
"""

import os
import time

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.batch import instance_rng, solve_many
from repro.core.decision import decision_psdp
from repro.core.decision_phased import decision_psdp_phased
from repro.core.dotexp import make_oracle
from repro.core.mmw import MatrixMultiplicativeWeights
from repro.core.result import SolveStatus
from repro.exceptions import FaultInjected, InvalidProblemError, NumericalError
from repro.operators.collection import ConstraintCollection
from repro.operators.factorized import FactorizedPSDOperator
from repro.robustness import (
    BoundViolation,
    Crash,
    NaN,
    NonConvergent,
    Overflow,
    clear_faults,
    inject,
)
from repro.robustness.faultinject import _PLAN, fault_hook, fault_hook_array

from helpers import assert_results_identical, factorized_family

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


@pytest.fixture(autouse=True)
def _no_leftover_faults():
    yield
    clear_faults()
    assert not _PLAN


def gram_collection(m=24, n=6, rank=1, scale=0.3, seed=7):
    """Low total rank (< m) so the Taylor engine auto-selects gram mode."""
    return factorized_family(seed + CHAOS_SEED, n=n, m=m, rank=rank, scale=scale)


def dense_psi_collection(m=12, n=8, rank=2, scale=0.4, seed=7):
    """Total rank > m so the engine auto-selects dense-psi (blocked site)."""
    return factorized_family(seed + CHAOS_SEED, n=n, m=m, rank=rank, scale=scale)


def big_collection(m=80, n=10, rank=2, scale=0.2, seed=7):
    """m above the dense cutoff (64) so lambda_max runs warm-started Lanczos."""
    return factorized_family(seed + CHAOS_SEED, n=n, m=m, rank=rank, scale=scale)


def assert_recovered(clean, faulty, site):
    """The chaos contract: same fixed-seed decision, event recorded."""
    assert faulty.status == SolveStatus.DEGRADED
    assert faulty.outcome == clean.outcome
    np.testing.assert_allclose(faulty.dual_value, clean.dual_value, rtol=1e-6)
    events = faulty.metadata["recovery_events"]
    assert events and any(e["site"] == site for e in events)
    assert faulty.metadata["supervisor"]["recoveries"] == len(events)


class TestChaosRecovery:
    """Every fault class recovers to the identical fixed-seed decision."""

    @pytest.mark.parametrize("kind", [NaN, Overflow], ids=["nan", "overflow"])
    def test_taylor_gram_corruption_demotes(self, kind):
        coll = gram_collection()
        clean = decision_psdp(coll, epsilon=0.25, oracle="fast", rng=3)
        assert clean.status == SolveStatus.CERTIFIED
        with inject("taylor_gram.apply", kind, at_call=2, seed=CHAOS_SEED) as spec:
            faulty = decision_psdp(coll, epsilon=0.25, oracle="fast", rng=3)
        assert spec.fires == 1
        assert_recovered(clean, faulty, "taylor_gram.apply")
        event = next(e for e in faulty.metadata["recovery_events"] if e["site"] == "taylor_gram.apply")
        assert event["from_mode"] == "gram"

    def test_taylor_blocked_corruption_demotes(self):
        coll = dense_psi_collection()
        clean = decision_psdp(coll, epsilon=0.25, oracle="fast", rng=3)
        with inject("taylor_blocked.apply", NaN, at_call=2, seed=CHAOS_SEED) as spec:
            faulty = decision_psdp(coll, epsilon=0.25, oracle="fast", rng=3)
        assert spec.fires == 1
        assert_recovered(clean, faulty, "taylor_blocked.apply")

    def test_multi_rung_descent_to_reference_kernel(self):
        """Persistent faults on every engine rung walk the full ladder down
        to the reference (legacy per-term) kernel and still certify."""
        coll = gram_collection()
        clean = decision_psdp(coll, epsilon=0.25, oracle="fast", rng=3)
        with inject("taylor_gram.apply", NaN, at_call=1, times=10**6, seed=CHAOS_SEED), \
             inject("taylor_blocked.apply", NaN, at_call=1, times=10**6, seed=CHAOS_SEED):
            faulty = decision_psdp(coll, epsilon=0.25, oracle="fast", rng=3)
        assert faulty.status == SolveStatus.DEGRADED
        assert faulty.outcome == clean.outcome
        np.testing.assert_allclose(faulty.dual_value, clean.dual_value, rtol=1e-6)
        modes = [(e["from_mode"], e["to_mode"]) for e in faulty.metadata["recovery_events"]]
        assert ("gram", "dense-psi") in modes
        assert any(to == "reference" for _, to in modes)

    def test_lanczos_nonconvergence_demotes_to_cold_start(self):
        coll = big_collection()
        clean = decision_psdp(coll, epsilon=0.3, oracle="fast", rng=5)
        with inject("lanczos", NonConvergent, at_call=1, seed=CHAOS_SEED) as spec:
            faulty = decision_psdp(coll, epsilon=0.3, oracle="fast", rng=5)
        assert spec.fires == 1
        assert_recovered(clean, faulty, "lanczos")
        event = next(e for e in faulty.metadata["recovery_events"] if e["site"] == "lanczos")
        assert (event["from_mode"], event["to_mode"]) == ("warm", "cold")

    def test_lanczos_persistent_failure_falls_back_to_exact(self):
        coll = big_collection()
        clean = decision_psdp(coll, epsilon=0.3, oracle="fast", rng=5)
        with inject("lanczos", NonConvergent, at_call=1, times=2, seed=CHAOS_SEED) as spec:
            faulty = decision_psdp(coll, epsilon=0.3, oracle="fast", rng=5)
        assert spec.fires == 2
        assert_recovered(clean, faulty, "lanczos")
        modes = [(e["from_mode"], e["to_mode"]) for e in faulty.metadata["recovery_events"]]
        assert ("cold", "exact") in modes

    def test_hutchinson_bound_violation_demotes_to_identity(self):
        coll = gram_collection()

        def solve():
            oracle = make_oracle(
                coll, kind="fast", eps=0.25 / 4, rng=3, trace_mode="hutchinson"
            )
            return decision_psdp(coll, epsilon=0.25, oracle=oracle, rng=3)

        clean = solve()
        with inject("hutchinson", BoundViolation, at_call=2, seed=CHAOS_SEED) as spec:
            faulty = solve()
        assert spec.fires == 1
        assert_recovered(clean, faulty, "hutchinson")
        event = next(e for e in faulty.metadata["recovery_events"] if e["site"] == "hutchinson")
        assert event["to_mode"] == "identity"
        assert event["kind"] == "bound-violation"

    def test_psi_state_matvec_corruption_densifies(self):
        coll = big_collection()
        clean = decision_psdp(coll, epsilon=0.3, oracle="fast", rng=5)
        assert clean.metadata["psi_state"]["mode"] == "implicit"
        with inject("psi_state.matvec", NaN, at_call=3, seed=CHAOS_SEED) as spec:
            faulty = decision_psdp(coll, epsilon=0.3, oracle="fast", rng=5)
        assert spec.fires == 1
        assert_recovered(clean, faulty, "psi_state.matvec")
        assert faulty.metadata["psi_state"]["mode"] == "dense"
        event = next(e for e in faulty.metadata["recovery_events"] if e["site"] == "psi_state.matvec")
        assert (event["from_mode"], event["to_mode"]) == ("implicit", "dense")

    def test_phased_solver_recovers_identically(self):
        coll = gram_collection()
        clean = decision_psdp_phased(coll, epsilon=0.25, oracle="fast", rng=3)
        with inject("taylor_gram.apply", NaN, at_call=1, seed=CHAOS_SEED) as spec:
            faulty = decision_psdp_phased(coll, epsilon=0.25, oracle="fast", rng=3)
        assert spec.fires == 1
        assert_recovered(clean, faulty, "taylor_gram.apply")

    def test_recovery_work_is_charged(self):
        coll = gram_collection()
        with inject("taylor_gram.apply", NaN, at_call=2, seed=CHAOS_SEED):
            faulty = decision_psdp(coll, epsilon=0.25, oracle="fast", rng=3)
        assert faulty.metadata["supervisor"]["recoveries"] == 1
        assert "recovery" in faulty.work_depth.by_label


class TestBudgets:
    """Budget exhaustion returns best-effort results, never raises."""

    def test_iteration_budget_returns_partial_dual(self):
        coll = gram_collection(m=30, n=12, rank=2, scale=0.05)
        result = decision_psdp(coll, epsilon=0.2, oracle="fast", rng=3, iteration_budget=3)
        assert result.status == SolveStatus.BUDGET_EXHAUSTED
        assert result.iterations == 3
        # The partial dual is exactly verified feasible (measured rescale).
        assert np.isfinite(result.dual_value)
        assert result.metadata["solve_status"] == "budget_exhausted"

    def test_partial_dual_grows_monotonically_with_budget(self):
        coll = gram_collection(m=30, n=12, rank=2, scale=0.05)
        masses = []
        for budget in (2, 5, 10):
            result = decision_psdp(
                coll, epsilon=0.2, oracle="fast", rng=3, iteration_budget=budget
            )
            assert result.status == SolveStatus.BUDGET_EXHAUSTED
            masses.append(result.metadata["x_l1"])
        assert masses == sorted(masses)

    def test_wall_clock_budget_respected(self):
        coll = gram_collection(m=30, n=12, rank=2, scale=0.05)
        budget = 0.05
        start = time.monotonic()
        result = decision_psdp(
            coll, epsilon=0.02, oracle="fast", rng=3, wall_clock_budget=budget
        )
        elapsed = time.monotonic() - start
        if result.status == SolveStatus.BUDGET_EXHAUSTED:
            # The acceptance bound: return within 1.5x the requested budget
            # (generous slack for the in-flight iteration and result build).
            assert elapsed <= 10 * budget
            assert np.isfinite(result.dual_value)
        else:
            # The solve legitimately finished inside the budget.
            assert result.status == SolveStatus.CERTIFIED

    def test_tiny_wall_clock_budget_exhausts(self):
        coll = gram_collection(m=30, n=12, rank=2, scale=0.05)
        result = decision_psdp(
            coll, epsilon=0.02, oracle="fast", rng=3, wall_clock_budget=1e-9
        )
        assert result.status == SolveStatus.BUDGET_EXHAUSTED

    def test_recoveries_exhausted_returns_failed(self):
        coll = gram_collection()
        with inject("taylor_gram.apply", NaN, at_call=1, times=10**6, seed=CHAOS_SEED):
            result = decision_psdp(
                coll, epsilon=0.25, oracle="fast", rng=3, max_recoveries=0
            )
        assert result.status == SolveStatus.FAILED
        assert result.metadata["solve_status"] == "failed"

    def test_phased_iteration_budget(self):
        coll = gram_collection()
        result = decision_psdp_phased(
            coll, epsilon=0.25, oracle="fast", rng=3, iteration_budget=1
        )
        assert result.status == SolveStatus.BUDGET_EXHAUSTED
        assert result.iterations == 1

    def test_happy_path_is_certified_with_no_events(self):
        coll = gram_collection()
        result = decision_psdp(coll, epsilon=0.25, oracle="fast", rng=3)
        assert result.status == SolveStatus.CERTIFIED
        assert result.metadata["recovery_events"] == []
        assert result.metadata["supervisor"]["recoveries"] == 0

    def test_supervise_false_has_no_supervisor_metadata(self):
        coll = gram_collection()
        result = decision_psdp(coll, epsilon=0.25, oracle="fast", rng=3, supervise=False)
        assert result.status == SolveStatus.CERTIFIED
        assert "recovery_events" not in result.metadata
        assert "supervisor" not in result.metadata


class TestChaosBatch:
    """Fault supervision composed with the batched lockstep solver.

    A fault that lands inside a ``solve_many`` group must demote *only*
    the instance whose stack slice it corrupted — the batchmates keep
    their pristine certified results — and budget exhaustion must come
    back as a per-instance :class:`SolveStatus`, exactly as sequential.
    """

    def _batch(self, size=4):
        return [gram_collection(seed=7 + 11 * i) for i in range(size)]

    def _sequential(self, size=4, **overrides):
        return [
            decision_psdp(
                coll, epsilon=0.25, oracle="fast", rng=instance_rng(3, i), **overrides
            )
            for i, coll in enumerate(self._batch(size))
        ]

    def test_mid_batch_fault_ejects_only_the_faulted_instance(self):
        clean = self._sequential()
        assert all(r.status == SolveStatus.CERTIFIED for r in clean)
        with inject("taylor_gram.apply", NaN, at_call=2, seed=CHAOS_SEED) as spec:
            faulty = solve_many(self._batch(), epsilon=0.25, oracle="fast", rng=3)
        assert spec.fires == 1
        degraded = [i for i, r in enumerate(faulty) if r.status == SolveStatus.DEGRADED]
        assert len(degraded) == 1
        hit = degraded[0]
        events = faulty[hit].metadata["recovery_events"]
        assert len(events) == 1
        assert events[0]["kind"] == "BatchEjection"
        assert (events[0]["from_mode"], events[0]["to_mode"]) == ("batched", "sequential")
        assert events[0]["site"] == "taylor_gram.apply"
        assert faulty[hit].metadata["supervisor"]["recoveries"] == 1
        # The ejection re-solve replays the instance's own rng stream and
        # the one-shot fault was consumed by the discarded batched attempt,
        # so the decision itself is the clean sequential one.
        assert faulty[hit].outcome == clean[hit].outcome
        assert faulty[hit].dual_value == clean[hit].dual_value
        np.testing.assert_array_equal(faulty[hit].dual_x, clean[hit].dual_x)
        for i, result in enumerate(faulty):
            if i == hit:
                continue
            assert result.status == SolveStatus.CERTIFIED
            assert result.metadata["recovery_events"] == []
            assert result.metadata["supervisor"]["recoveries"] == 0
            assert result.dual_value == clean[i].dual_value
            np.testing.assert_array_equal(result.dual_x, clean[i].dual_x)

    def test_batch_budget_exhaustion_is_per_instance(self):
        clean = self._sequential(size=3, iteration_budget=3)
        batched = solve_many(
            self._batch(size=3), epsilon=0.25, oracle="fast", rng=3,
            iteration_budget=3,
        )
        for sequential, result in zip(clean, batched):
            assert result.status == SolveStatus.BUDGET_EXHAUSTED
            assert result.iterations == 3
            assert result.metadata["solve_status"] == "budget_exhausted"
            assert result.dual_value == sequential.dual_value
            np.testing.assert_array_equal(result.dual_x, sequential.dual_x)


class TestFaultInjector:
    """The injector itself: determinism, addressing, accounting."""

    def test_non_corrupting_fault_raises_fault_injected(self):
        with inject("lanczos", NonConvergent):
            with pytest.raises(FaultInjected) as excinfo:
                fault_hook("lanczos")
        assert excinfo.value.site == "lanczos"
        assert isinstance(excinfo.value, NumericalError)

    def test_at_call_addressing(self):
        with inject("lanczos", NonConvergent, at_call=3) as spec:
            fault_hook("lanczos")
            fault_hook("lanczos")
            assert spec.fires == 0
            with pytest.raises(FaultInjected):
                fault_hook("lanczos")
            fault_hook("lanczos")  # times=1: armed once only
        assert spec.fires == 1
        assert spec.calls_seen == 4

    def test_corruption_is_deterministic_in_seed(self):
        outs = []
        for _ in range(2):
            with inject("taylor_gram.apply", NaN, seed=11):
                arr = np.ones(32)
                fault_hook_array("taylor_gram.apply", arr)
                outs.append(arr.copy())
        np.testing.assert_array_equal(outs[0], outs[1])
        assert np.isnan(outs[0]).sum() == 1

    def test_overflow_kind_poisons_with_inf(self):
        with inject("taylor_gram.apply", Overflow, seed=2):
            arr = np.ones(16)
            fault_hook_array("taylor_gram.apply", arr)
        assert np.isinf(arr).sum() == 1

    def test_site_isolation(self):
        with inject("hutchinson", BoundViolation):
            fault_hook("lanczos")  # different site: no fire
            arr = np.ones(8)
            fault_hook_array("taylor_gram.apply", arr)
            assert np.all(np.isfinite(arr))

    def test_clear_faults_disarms(self):
        ctx = inject("lanczos", NonConvergent)
        ctx.__enter__()
        clear_faults()
        fault_hook("lanczos")  # must not raise


class TestInputHardening:
    """Construction-time rejection of non-finite / degenerate inputs."""

    def test_mmw_rejects_non_finite_gain(self):
        mmw = MatrixMultiplicativeWeights(dim=3, eps0=0.25, validate_gains=True)
        gain = np.eye(3) * 0.5
        gain[1, 1] = np.nan
        with pytest.raises(InvalidProblemError, match="non-finite"):
            mmw.update(gain)

    def test_mmw_rejects_nan_gain_without_validation(self):
        # The NaN check is unconditional: NaN slips through the
        # lambda_max comparison (NaN compares False), so even
        # validate_gains=False must reject it.
        mmw = MatrixMultiplicativeWeights(dim=3, eps0=0.25, validate_gains=False)
        gain = np.full((3, 3), np.nan)
        with pytest.raises(InvalidProblemError, match="non-finite"):
            mmw.update(gain)

    def test_sparse_factor_rejects_nan(self):
        factor = sp.csr_matrix(np.array([[1.0, 0.0], [np.nan, 2.0]]))
        with pytest.raises(InvalidProblemError, match="NaN or infinite"):
            FactorizedPSDOperator(factor)

    def test_collection_rejects_zero_rank_operator(self):
        ops = [
            FactorizedPSDOperator(np.ones((4, 1))),
            FactorizedPSDOperator(np.zeros((4, 0))),
        ]
        with pytest.raises(InvalidProblemError, match="zero-rank"):
            ConstraintCollection(ops)

    def test_weighted_sum_rejects_non_finite_weights(self):
        coll = gram_collection()
        weights = np.ones(len(coll))
        weights[2] = np.nan
        with pytest.raises(InvalidProblemError, match="non-finite"):
            coll.weighted_sum(weights)

    def test_scaled_rejects_non_finite_coefficients(self):
        coll = gram_collection()
        coeffs = np.ones(len(coll))
        coeffs[0] = np.inf
        with pytest.raises(InvalidProblemError, match="finite"):
            coll.scaled(coeffs)


class TestCrashFaults:
    """Crash-style (fatal) faults: not absorbed by the demotion ladder."""

    def test_crash_fails_instead_of_recovering(self):
        with inject("lanczos", Crash, at_call=1, seed=CHAOS_SEED) as spec:
            result = decision_psdp(big_collection(), epsilon=0.25, oracle="fast", rng=3)
        assert spec.fires >= 1
        assert result.status == SolveStatus.FAILED
        assert result.metadata["solve_status"] == "failed"

    def test_crash_before_first_capture_has_no_checkpoint(self):
        with inject("lanczos", Crash, at_call=1, seed=CHAOS_SEED):
            result = decision_psdp(
                big_collection(), epsilon=0.25, oracle="fast", rng=3,
                checkpoint_every=1000,
            )
        assert result.status == SolveStatus.FAILED
        assert "checkpoint" not in result.metadata

    def test_crash_after_periodic_capture_resumes_identically(self):
        # Crash at the 7th Lanczos call: the periodic capture from an
        # earlier iteration survives on the FAILED result, and a clean
        # resume lands on the uninterrupted run's bits.
        baseline = decision_psdp(
            big_collection(), epsilon=0.25, oracle="fast", rng=3,
            collect_history=True,
        )
        with inject("lanczos", Crash, at_call=7, seed=CHAOS_SEED):
            crashed = decision_psdp(
                big_collection(), epsilon=0.25, oracle="fast", rng=3,
                checkpoint_every=2, collect_history=True,
            )
        assert crashed.status == SolveStatus.FAILED
        ckpt = crashed.metadata["checkpoint"]
        resumed = decision_psdp(
            big_collection(), epsilon=0.25, oracle="fast", rng=3,
            collect_history=True, resume_from=ckpt,
        )
        assert_results_identical(resumed, baseline, label="crash-resume")

    def test_at_time_arming_defers_fault(self):
        from repro.service import VirtualClock

        clock = VirtualClock()
        with inject(
            "chaos.site", NonConvergent, at_call=1, seed=CHAOS_SEED,
            at_time=5.0, clock=clock,
        ) as spec:
            fault_hook("chaos.site")  # before at_time: not even counted
            assert spec.calls_seen == 0
            clock.advance(6.0)
            with pytest.raises(FaultInjected):
                fault_hook("chaos.site")
            assert spec.fires == 1


class TestCheckpointChaos:
    """Interrupt/resume bit-equality under the chaos seed."""

    def test_interrupt_every_iteration_resumes_identically(self):
        baseline = decision_psdp(
            gram_collection(), epsilon=0.25, oracle="fast", rng=3,
            collect_history=True,
        )
        assert baseline.status == SolveStatus.CERTIFIED
        for k in range(1, baseline.iterations):
            partial = decision_psdp(
                gram_collection(), epsilon=0.25, oracle="fast", rng=3,
                collect_history=True, iteration_budget=k,
            )
            assert partial.status == SolveStatus.BUDGET_EXHAUSTED, f"k={k}"
            resumed = decision_psdp(
                gram_collection(), epsilon=0.25, oracle="fast", rng=3,
                collect_history=True,
                resume_from=partial.metadata["checkpoint"],
            )
            assert_results_identical(resumed, baseline, label=f"chaos-resume@{k}")

    def test_phased_interrupt_every_iteration_resumes_identically(self):
        baseline = decision_psdp_phased(
            gram_collection(), epsilon=0.25, oracle="fast", rng=3,
            collect_history=True,
        )
        assert baseline.status == SolveStatus.CERTIFIED
        for k in range(1, baseline.iterations):
            partial = decision_psdp_phased(
                gram_collection(), epsilon=0.25, oracle="fast", rng=3,
                collect_history=True, iteration_budget=k,
            )
            assert partial.status == SolveStatus.BUDGET_EXHAUSTED, f"k={k}"
            resumed = decision_psdp_phased(
                gram_collection(), epsilon=0.25, oracle="fast", rng=3,
                collect_history=True,
                resume_from=partial.metadata["checkpoint"],
            )
            assert_results_identical(
                resumed, baseline, label=f"chaos-phased-resume@{k}"
            )

    def test_resume_mid_demotion_ladder(self):
        # The fault demotes the gram kernel early; the interrupt lands
        # *after* the demotion.  The checkpoint must carry the ladder
        # position (and the recorded event), so the clean resume matches
        # the uninterrupted degraded run — not a pristine one.
        def solve(**overrides):
            return decision_psdp(
                gram_collection(), epsilon=0.25, oracle="fast", rng=3,
                collect_history=True, **overrides,
            )

        with inject("taylor_gram.apply", NaN, at_call=2, seed=CHAOS_SEED):
            baseline = solve()
        assert baseline.status == SolveStatus.DEGRADED
        with inject("taylor_gram.apply", NaN, at_call=2, seed=CHAOS_SEED):
            partial = solve(iteration_budget=5)
        assert partial.status == SolveStatus.BUDGET_EXHAUSTED
        events = partial.metadata["recovery_events"]
        assert events and events[0]["site"] == "taylor_gram.apply"
        resumed = solve(resume_from=partial.metadata["checkpoint"])
        assert_results_identical(resumed, baseline, label="mid-ladder-resume")
        assert resumed.status == SolveStatus.DEGRADED


class TestServiceChaos:
    """Service retry/backoff determinism under ``REPRO_CHAOS_SEED``."""

    def _run(self):
        from repro.core.decision import DecisionOptions
        from repro.service import RequestOutcome, SolveService, VirtualClock

        clock = VirtualClock()
        service = SolveService(
            options=DecisionOptions(epsilon=0.25, oracle="fast", max_recoveries=0),
            seed=CHAOS_SEED,
            clock=clock,
        )
        with inject(
            "taylor_gram.apply", NaN, at_call=1, times=10**6, seed=CHAOS_SEED
        ):
            rid = service.submit(gram_collection(), max_attempts=3)
            schedule = []
            while service.response(rid) is None:
                service.step()
                schedule.append((clock(), service.next_ready_time()))
                nxt = service.next_ready_time()
                if nxt is not None and nxt > clock():
                    clock.advance(nxt - clock())
        clear_faults()
        return service.response(rid), schedule

    def test_retry_backoff_schedule_is_deterministic(self):
        from repro.service import RequestOutcome

        response_a, schedule_a = self._run()
        response_b, schedule_b = self._run()
        assert response_a.outcome is RequestOutcome.RETRY_EXHAUSTED
        assert response_a.outcome is response_b.outcome
        assert response_a.attempts == response_b.attempts == 3
        assert schedule_a == schedule_b

    def test_crashing_service_request_is_typed_not_raised(self):
        from repro.core.decision import DecisionOptions
        from repro.service import RequestOutcome, SolveService, VirtualClock

        service = SolveService(
            options=DecisionOptions(epsilon=0.25, oracle="fast"),
            seed=CHAOS_SEED,
            clock=VirtualClock(),
        )
        with inject("lanczos", Crash, at_call=1, times=2, seed=CHAOS_SEED):
            rid = service.submit(big_collection(), max_attempts=3)
            responses = service.drain()
        response = responses[rid]
        # Both crash fires can be consumed within one attempt (the cert
        # check and the final dual rescale both call the site), so the
        # retry either succeeds or exhausts — but it is always typed.
        assert response.outcome in (
            RequestOutcome.COMPLETED,
            RequestOutcome.DEGRADED,
            RequestOutcome.RETRY_EXHAUSTED,
        )
        assert response.attempts >= 1
