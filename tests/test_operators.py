"""Tests for repro.operators (all PSD operator representations + collections)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp
from hypothesis import given, settings, strategies as st

from repro.exceptions import InvalidProblemError
from repro.linalg.psd import random_psd
from repro.operators import (
    ConstraintCollection,
    DensePSDOperator,
    DiagonalPSDOperator,
    FactorizedPSDOperator,
    LowRankPSDOperator,
    SparsePSDOperator,
    as_operator,
)


def _all_representations(rng):
    """One operator of each kind, together with its dense ground truth."""
    dense_mat = random_psd(5, rng=rng, scale=1.5)
    diag = np.abs(rng.uniform(0.1, 2.0, size=5))
    factor = rng.standard_normal((5, 2))
    vectors = rng.standard_normal((5, 3))
    weights = np.abs(rng.uniform(0.5, 1.5, size=3))
    reps = [
        (DensePSDOperator(dense_mat), dense_mat),
        (SparsePSDOperator(sp.csr_matrix(dense_mat)), dense_mat),
        (DiagonalPSDOperator(diag), np.diag(diag)),
        (FactorizedPSDOperator(factor), factor @ factor.T),
        (LowRankPSDOperator(vectors, weights), (vectors * weights) @ vectors.T),
    ]
    return reps


class TestOperatorContract:
    """Every representation must agree with its dense ground truth."""

    def test_to_dense(self, rng):
        for op, truth in _all_representations(rng):
            np.testing.assert_allclose(op.to_dense(), truth, atol=1e-10)

    def test_trace(self, rng):
        for op, truth in _all_representations(rng):
            assert op.trace() == pytest.approx(np.trace(truth), rel=1e-10)

    def test_dot(self, rng):
        weight = random_psd(5, rng=rng)
        for op, truth in _all_representations(rng):
            assert op.dot(weight) == pytest.approx(float(np.sum(truth * weight)), rel=1e-9)

    def test_matvec(self, rng):
        vec = rng.standard_normal(5)
        for op, truth in _all_representations(rng):
            np.testing.assert_allclose(op.matvec(vec), truth @ vec, atol=1e-9)

    def test_matvec_block(self, rng):
        block = rng.standard_normal((5, 3))
        for op, truth in _all_representations(rng):
            np.testing.assert_allclose(op.matvec(block), truth @ block, atol=1e-9)

    def test_add_to(self, rng):
        for op, truth in _all_representations(rng):
            acc = np.zeros((5, 5))
            op.add_to(acc, 2.0)
            np.testing.assert_allclose(acc, 2.0 * truth, atol=1e-9)

    def test_gram_factor_reconstructs(self, rng):
        for op, truth in _all_representations(rng):
            q = op.gram_factor()
            np.testing.assert_allclose(q @ q.T, truth, atol=1e-8)

    def test_spectral_norm(self, rng):
        for op, truth in _all_representations(rng):
            assert op.spectral_norm() == pytest.approx(float(np.linalg.eigvalsh(truth)[-1]), rel=1e-7)

    def test_nnz_positive(self, rng):
        for op, _ in _all_representations(rng):
            assert op.nnz > 0

    def test_scaled(self, rng):
        for op, truth in _all_representations(rng):
            np.testing.assert_allclose(op.scaled(0.5).to_dense(), 0.5 * truth, atol=1e-9)
            with pytest.raises(ValueError):
                op.scaled(-1.0)

    def test_shape(self, rng):
        for op, _ in _all_representations(rng):
            assert op.shape == (5, 5)


class TestConstructorValidation:
    def test_dense_rejects_non_psd(self):
        with pytest.raises(InvalidProblemError):
            DensePSDOperator(np.diag([1.0, -1.0]))

    def test_sparse_requires_sparse(self):
        with pytest.raises(InvalidProblemError):
            SparsePSDOperator(np.eye(3))

    def test_sparse_rejects_rectangular(self):
        with pytest.raises(InvalidProblemError):
            SparsePSDOperator(sp.csr_matrix(np.ones((2, 3))))

    def test_diagonal_rejects_negative(self):
        with pytest.raises(InvalidProblemError):
            DiagonalPSDOperator(np.array([1.0, -0.5]))

    def test_diagonal_rejects_nan(self):
        with pytest.raises(InvalidProblemError):
            DiagonalPSDOperator(np.array([1.0, np.nan]))

    def test_factorized_rejects_nan(self):
        with pytest.raises(InvalidProblemError):
            FactorizedPSDOperator(np.array([[1.0], [np.nan]]))

    def test_factorized_1d_promoted(self):
        op = FactorizedPSDOperator(np.array([1.0, 2.0]))
        assert op.rank == 1

    def test_lowrank_weight_mismatch(self):
        with pytest.raises(InvalidProblemError):
            LowRankPSDOperator(np.ones((3, 2)), np.ones(3))

    def test_lowrank_negative_weights(self):
        with pytest.raises(InvalidProblemError):
            LowRankPSDOperator(np.ones((3, 1)), np.array([-1.0]))

    def test_lowrank_outer_constructor(self):
        vec = np.array([1.0, -1.0, 0.0])
        op = LowRankPSDOperator.outer(vec, weight=0.5)
        np.testing.assert_allclose(op.to_dense(), 0.5 * np.outer(vec, vec))


class TestAsOperator:
    def test_passthrough(self, rng):
        op = DensePSDOperator(random_psd(3, rng=rng))
        assert as_operator(op) is op

    def test_dense_array(self, rng):
        op = as_operator(random_psd(4, rng=rng))
        assert isinstance(op, DensePSDOperator)

    def test_sparse_matrix(self):
        op = as_operator(sp.eye(3, format="csr"))
        assert isinstance(op, SparsePSDOperator)

    def test_1d_becomes_diagonal(self):
        op = as_operator(np.array([1.0, 2.0]))
        assert isinstance(op, DiagonalPSDOperator)


class TestConstraintCollection:
    def test_dimension_mismatch_rejected(self, rng):
        with pytest.raises(InvalidProblemError):
            ConstraintCollection([np.eye(3), np.eye(4)])

    def test_empty_rejected(self):
        with pytest.raises(InvalidProblemError):
            ConstraintCollection([])

    def test_traces_and_norms(self, small_collection):
        assert small_collection.traces().shape == (4,)
        assert small_collection.width() == pytest.approx(2.0, rel=1e-8)

    def test_weighted_sum_matches_manual(self, small_collection, rng):
        weights = np.abs(rng.uniform(0.1, 1.0, size=4))
        manual = sum(w * op.to_dense() for w, op in zip(weights, small_collection))
        np.testing.assert_allclose(small_collection.weighted_sum(weights), manual, atol=1e-10)

    def test_weighted_sum_rejects_negative(self, small_collection):
        with pytest.raises(InvalidProblemError):
            small_collection.weighted_sum(np.array([1.0, -1.0, 0.0, 0.0]))

    def test_weighted_sum_wrong_length(self, small_collection):
        with pytest.raises(InvalidProblemError):
            small_collection.weighted_sum(np.ones(3))

    def test_dots_match_individual(self, small_collection, rng):
        weight = random_psd(5, rng=rng)
        dots = small_collection.dots(weight)
        for value, op in zip(dots, small_collection):
            assert value == pytest.approx(op.dot(weight), rel=1e-10)

    def test_dots_with_backend_tracks_work(self, small_collection, rng):
        from repro.parallel.backends import SerialBackend
        from repro.parallel.workdepth import WorkDepthTracker

        tracker = WorkDepthTracker()
        backend = SerialBackend(tracker=tracker)
        weight = random_psd(5, rng=rng)
        dots_backend = small_collection.dots(weight, backend=backend)
        np.testing.assert_allclose(dots_backend, small_collection.dots(weight), atol=1e-12)
        assert tracker.work > 0

    def test_dots_shape_mismatch(self, small_collection):
        with pytest.raises(InvalidProblemError):
            small_collection.dots(np.eye(3))

    def test_subset_and_scaled(self, small_collection):
        sub = small_collection.subset([0, 2])
        assert len(sub) == 2
        scaled = small_collection.scaled(np.full(4, 2.0))
        np.testing.assert_allclose(scaled.traces(), 2.0 * small_collection.traces(), rtol=1e-10)

    def test_subset_empty_rejected(self, small_collection):
        with pytest.raises(InvalidProblemError):
            small_collection.subset([])

    def test_total_nnz(self, small_collection):
        assert small_collection.total_nnz == sum(op.nnz for op in small_collection)

    def test_gram_factors_reconstruct(self, small_collection):
        for factor, op in zip(small_collection.gram_factors(), small_collection):
            np.testing.assert_allclose(factor @ factor.T, op.to_dense(), atol=1e-8)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=9999), n=st.integers(min_value=1, max_value=5))
def test_weighted_sum_is_psd_property(seed, n):
    """Property: non-negative combinations of PSD operators are PSD."""
    rng = np.random.default_rng(seed)
    collection = ConstraintCollection([random_psd(4, rng=rng) for _ in range(n)], validate=False)
    weights = np.abs(rng.uniform(0.0, 2.0, size=n))
    psi = collection.weighted_sum(weights)
    assert np.linalg.eigvalsh(psi)[0] >= -1e-9
