"""Tests for repro.linalg.trace_estimation (structured degenerate-regime trace).

Every estimator mode must agree with the dense reference — the full
``(m, m)`` identity pushed through the Taylor polynomial,
``Tr[p(Psi/2)^2] = ||p(Psi/2) I||_F^2`` — within its certification: exact
(rounding-level) for the Gram-spectrum and deflated block-Krylov modes,
within the reported ``error_bound`` for the Hutchinson sampler.  The mode
policy and the oracle threading (zero full-identity Taylor applies on the
structured paths) are pinned here; the end-to-end solver regressions live
in ``tests/test_decision_packed_regressions.py``.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.core.dotexp import FastDotExpOracle, big_dot_exp
from repro.exceptions import InvalidProblemError
from repro.linalg.taylor_gram import GRAM_HYSTERESIS
from repro.linalg.trace_estimation import (
    TRACE_IDENTITY_MARGIN,
    TRACE_MIN_PROBES,
    TraceEstimator,
    gram_exp_trace,
    select_trace_mode,
    truncated_exp_values,
)
from repro.operators import ConstraintCollection, FactorizedPSDOperator

from helpers import factorized_family


def _collection(seed, n=10, m=48, rank=2, kind="dense", density=0.1, support=None):
    """Random factorized constraints across the low-rank/sparse/concentrated
    families the estimator must cover."""
    scale = 1.0 / np.sqrt(m)
    if kind == "dense":
        return factorized_family(seed, n=n, m=m, rank=rank, scale=scale, validate=False)
    rng = np.random.default_rng(seed)
    ops = []
    for _ in range(n):
        if kind == "sparse":
            factor = sp.random(m, rank, density=density, random_state=rng, format="csr")
            if factor.nnz == 0:
                factor = sp.csr_matrix(
                    (np.full(rank, scale), (rng.integers(0, m, rank), np.arange(rank))),
                    shape=(m, rank),
                )
            ops.append(FactorizedPSDOperator(factor * (scale / np.sqrt(density))))
        elif kind == "concentrated":
            rows_avail = support if support is not None else max(m // 8, 4)
            dense = np.zeros((m, rank))
            for c in range(rank):
                rows = rng.choice(rows_avail, size=min(4, rows_avail), replace=False)
                dense[rows, c] = scale * rng.standard_normal(rows.shape[0])
            ops.append(FactorizedPSDOperator(sp.csr_matrix(dense)))
        else:  # pragma: no cover - test helper
            raise ValueError(kind)
    return ConstraintCollection(ops, validate=False)


def _reference_trace(packed, weights, degree, scale=0.5):
    """The legacy identity push: ``||p(scale * Psi) I||_F^2``."""
    kernel = packed.taylor_kernel(weights)
    eye_t = kernel.apply(np.eye(packed.dim), degree, scale=scale)
    return float(np.sum(eye_t * eye_t))


class TestTruncatedExpValues:
    def test_matches_exp_at_high_degree(self):
        x = np.linspace(0.0, 3.0, 7)
        np.testing.assert_allclose(
            truncated_exp_values(x, 40), np.exp(x), rtol=1e-12
        )

    def test_scale_and_low_degree(self):
        x = np.array([0.0, 1.0, 2.0])
        # degree 2: 1 + 0.5 x
        np.testing.assert_allclose(
            truncated_exp_values(x, 2, scale=0.5), 1.0 + 0.5 * x
        )

    def test_degree_validation(self):
        with pytest.raises(InvalidProblemError):
            truncated_exp_values(np.ones(3), 0)


class TestSelectTraceMode:
    def test_gram_under_hysteresis_gate(self):
        assert select_trace_mode(100, 0) == "gram"
        assert select_trace_mode(100, 50) == "gram"
        # The hysteresis margin keeps near-threshold stacks on the gram path.
        assert select_trace_mode(100, int(GRAM_HYSTERESIS * 100 / 2)) == "gram"

    def test_deflated_midrange(self):
        assert select_trace_mode(100, 60) == "deflated"
        margin = int(TRACE_IDENTITY_MARGIN * 100) - TRACE_MIN_PROBES
        assert select_trace_mode(100, margin) == "deflated"

    def test_identity_near_full_rank(self):
        assert select_trace_mode(100, 95) == "identity"
        assert select_trace_mode(100, 150) == "identity"

    def test_negative_shapes_rejected(self):
        with pytest.raises(InvalidProblemError):
            select_trace_mode(-1, 2)


class TestGramExpTrace:
    @pytest.mark.parametrize("kind", ["dense", "sparse", "concentrated"])
    def test_matches_identity_push(self, kind):
        coll = _collection(3, n=8, m=40, kind=kind)
        packed = coll.packed()
        w = np.random.default_rng(4).random(len(coll)) + 0.1
        degree = 22
        ref = _reference_trace(packed, w, degree)
        value = gram_exp_trace(
            packed.gram_matrix(),
            packed.expand_weights(w),
            packed.dim,
            degree,
            scale=0.5,
            squared=True,
        )
        assert value == pytest.approx(ref, rel=1e-10)

    def test_unsquared_matches_eigen_sum(self):
        coll = _collection(5, n=6, m=30)
        packed = coll.packed()
        w = np.full(len(coll), 0.4)
        col_w = packed.expand_weights(w)
        psi = packed.weighted_sum(w)
        degree = 25
        lam = np.linalg.eigvalsh(psi)
        ref = float(truncated_exp_values(lam, degree, scale=0.5).sum())
        value = gram_exp_trace(
            packed.gram_matrix(), col_w, packed.dim, degree, scale=0.5, squared=False
        )
        assert value == pytest.approx(ref, rel=1e-10)

    def test_zero_weights_give_dim(self):
        coll = _collection(6, n=4, m=20)
        packed = coll.packed()
        value = gram_exp_trace(
            packed.gram_matrix(),
            np.zeros(packed.total_rank),
            packed.dim,
            10,
            squared=True,
        )
        assert value == pytest.approx(float(packed.dim))

    def test_rank_above_dim_rejected(self):
        with pytest.raises(InvalidProblemError):
            gram_exp_trace(np.eye(5), np.ones(5), 3, 10)


class TestTraceEstimatorModes:
    @pytest.mark.parametrize("kind", ["dense", "sparse", "concentrated"])
    @pytest.mark.parametrize("mode", ["gram", "deflated"])
    def test_exact_modes_match_reference(self, kind, mode):
        coll = _collection(7, n=9, m=44, kind=kind)
        packed = coll.packed()
        w = np.random.default_rng(8).random(len(coll)) + 0.05
        degree = 20
        ref = _reference_trace(packed, w, degree)
        estimator = TraceEstimator(packed, mode=mode).bind(w)
        kernel = packed.taylor_kernel(w)
        estimate = estimator.estimate(kernel, degree, scale=0.5)
        assert estimate.mode == mode
        assert estimate.error_bound == 0.0
        assert estimate.value == pytest.approx(ref, rel=1e-9)

    def test_deflated_reuses_transformed_block(self):
        coll = _collection(9, n=8, m=40)
        packed = coll.packed()
        w = np.full(len(coll), 0.3)
        degree = 18
        kernel = packed.taylor_kernel(w)
        transformed = kernel.apply(packed.dense_columns(), degree, scale=0.5)
        estimator = TraceEstimator(packed, mode="deflated").bind(w)
        with_block = estimator.estimate(
            kernel, degree, scale=0.5, transformed_factors=transformed
        )
        fresh = TraceEstimator(packed, mode="deflated").bind(w)
        without = fresh.estimate(kernel, degree, scale=0.5)
        assert with_block.value == pytest.approx(without.value, rel=1e-12)

    @pytest.mark.parametrize("kind", ["dense", "sparse", "concentrated"])
    def test_hutchinson_within_certified_bound(self, kind):
        coll = _collection(11, n=10, m=52, kind=kind)
        packed = coll.packed()
        w = np.random.default_rng(12).random(len(coll)) + 0.1
        degree = 20
        ref = _reference_trace(packed, w, degree)
        estimator = TraceEstimator(
            packed, mode="hutchinson", eps=0.05, seed=5
        ).bind(w)
        kernel = packed.taylor_kernel(w)
        estimate = estimator.estimate(kernel, degree, scale=0.5)
        if estimate.mode == "hutchinson":
            assert abs(estimate.value - ref) <= max(
                estimate.error_bound, 0.05 * ref
            )
            assert estimate.probes >= 2
        else:  # budget exhausted: the exact fallback must be bit-exact
            assert estimate.value == pytest.approx(ref, rel=1e-12)
            assert estimator.identity_fallbacks == 1

    def test_hutchinson_is_deterministic_per_seed(self):
        coll = _collection(13, n=8, m=36)
        packed = coll.packed()
        w = np.full(len(coll), 0.25)
        degree = 16

        def run(seed):
            estimator = TraceEstimator(
                packed, mode="hutchinson", eps=0.1, seed=seed
            ).bind(w)
            return estimator.estimate(packed.taylor_kernel(w), degree, scale=0.5)

        a, b, c = run(7), run(7), run(8)
        assert a.value == b.value and a.probes == b.probes
        assert a.value != c.value  # a different seed draws different probes

    def test_hutchinson_budget_exhaustion_falls_back_exactly(self):
        coll = _collection(15, n=6, m=32)
        packed = coll.packed()
        w = np.full(len(coll), 0.3)
        degree = 15
        ref = _reference_trace(packed, w, degree)
        # An absurdly tight tolerance forces the budget out; the estimator
        # must return the exact identity-push value and count the fallback.
        estimator = TraceEstimator(
            packed, mode="hutchinson", eps=1e-9, seed=1, max_probes=4
        ).bind(w)
        estimate = estimator.estimate(packed.taylor_kernel(w), degree, scale=0.5)
        assert estimate.mode == "identity"
        assert estimate.value == pytest.approx(ref, rel=1e-12)
        assert estimator.identity_fallbacks == 1
        assert estimator.stats()["mode_counts"] == {"identity": 1}

    def test_identity_mode_refuses_estimates(self):
        coll = _collection(17, n=4, m=10, rank=4)
        packed = coll.packed()
        estimator = TraceEstimator(packed, mode="identity")
        assert not estimator.structured
        with pytest.raises(InvalidProblemError):
            estimator.estimate(packed.taylor_kernel(np.ones(4)), 10)

    def test_bind_required_for_weighted_modes(self):
        coll = _collection(19, n=5, m=24)
        packed = coll.packed()
        estimator = TraceEstimator(packed, mode="gram")
        with pytest.raises(InvalidProblemError):
            estimator.estimate(packed.taylor_kernel(np.ones(5)), 10)

    def test_unknown_mode_rejected(self):
        coll = _collection(21, n=4, m=16)
        with pytest.raises(InvalidProblemError):
            TraceEstimator(coll.packed(), mode="krylov++")


class TestBigDotExpThreading:
    def _setup(self, seed=23, n=9, m=40, kind="dense"):
        coll = _collection(seed, n=n, m=m, kind=kind)
        packed = coll.packed()
        w = np.random.default_rng(seed + 1).random(n) + 0.1
        kernel = packed.taylor_kernel(w)
        return packed, w, kernel

    def test_degenerate_sketch_values_and_trace_match_legacy(self):
        packed, w, kernel = self._setup()
        # eps small enough that the JL dimension exceeds m: degenerate.
        legacy_vals, legacy_trace = big_dot_exp(
            kernel, packed, kappa=4.0, eps=0.05, rng=0, return_trace=True
        )
        estimator = TraceEstimator(packed, mode="gram").bind(w)
        vals, trace = big_dot_exp(
            kernel,
            packed,
            kappa=4.0,
            eps=0.05,
            rng=0,
            return_trace=True,
            trace_estimator=estimator,
        )
        np.testing.assert_allclose(vals, legacy_vals, rtol=1e-9)
        assert trace == pytest.approx(legacy_trace, rel=1e-9)
        assert estimator.calls == 1

    def test_structured_path_counts_zero_identity_applies(self):
        from repro.instrumentation.counters import OracleCounters

        packed, w, kernel = self._setup()
        estimator = TraceEstimator(packed, mode="gram").bind(w)
        counters = OracleCounters()
        big_dot_exp(
            kernel,
            packed,
            kappa=4.0,
            eps=0.05,
            rng=0,
            return_trace=True,
            counters=counters,
            trace_estimator=estimator,
        )
        assert counters.extra.get("identity_taylor_applies", 0) == 0
        assert counters.extra["structured_trace_estimates"] == 1

    def test_legacy_path_counts_identity_applies(self):
        from repro.instrumentation.counters import OracleCounters

        packed, w, kernel = self._setup()
        counters = OracleCounters()
        big_dot_exp(
            kernel,
            packed,
            kappa=4.0,
            eps=0.05,
            rng=0,
            return_trace=True,
            counters=counters,
        )
        assert counters.extra["identity_taylor_applies"] == 1

    def test_no_sketch_path_threads_estimator(self):
        packed, w, kernel = self._setup()
        legacy_vals, legacy_trace = big_dot_exp(
            kernel, packed, kappa=4.0, eps=0.05, use_sketch=False, return_trace=True
        )
        estimator = TraceEstimator(packed, mode="deflated").bind(w)
        vals, trace = big_dot_exp(
            kernel,
            packed,
            kappa=4.0,
            eps=0.05,
            use_sketch=False,
            return_trace=True,
            trace_estimator=estimator,
        )
        np.testing.assert_allclose(vals, legacy_vals, rtol=1e-12)
        assert trace == pytest.approx(legacy_trace, rel=1e-9)

    def test_non_degenerate_sketch_ignores_estimator(self):
        # Loose eps on a larger m: the sketch genuinely reduces, the trace
        # rides on the sketch block, and the estimator must stay idle.
        coll = _collection(25, n=6, m=96)
        packed = coll.packed()
        w = np.full(6, 0.3)
        kernel = packed.taylor_kernel(w)
        estimator = TraceEstimator(packed, mode="gram").bind(w)
        big_dot_exp(
            kernel,
            packed,
            kappa=3.0,
            eps=0.9,
            rng=0,
            sketch_constant=1.0,
            return_trace=True,
            trace_estimator=estimator,
        )
        assert estimator.calls == 0


class TestFastOracleTraceModes:
    def _fresh(self, seed, n=10, m=48, kind="dense", **oracle_kw):
        coll = _collection(seed, n=n, m=m, kind=kind)
        return FastDotExpOracle(coll, eps=0.1, rng=0, **oracle_kw), n

    @pytest.mark.parametrize("kind", ["dense", "sparse", "concentrated"])
    def test_auto_matches_identity_reference(self, kind):
        oracle_new, n = self._fresh(27, kind=kind, trace_mode="auto")
        oracle_ref, _ = self._fresh(27, kind=kind, trace_mode="identity")
        x = np.random.default_rng(28).random(n) + 0.1
        out_new = oracle_new(None, x)
        out_ref = oracle_ref(None, x)
        np.testing.assert_allclose(out_new.values, out_ref.values, rtol=1e-6)
        assert out_new.trace == pytest.approx(out_ref.trace, rel=1e-6)
        # The structured call never pushed the identity; the reference did.
        assert oracle_new.counters.extra.get("identity_taylor_applies", 0) == 0
        assert oracle_ref.counters.extra["identity_taylor_applies"] == 1
        assert oracle_ref.trace_estimator is None

    def test_structured_work_charge_is_smaller(self):
        oracle_new, n = self._fresh(29, trace_mode="auto")
        oracle_ref, _ = self._fresh(29, trace_mode="identity")
        x = np.full(n, 0.2)
        assert oracle_new(None, x).work < oracle_ref(None, x).work

    def test_hutchinson_mode_consumes_no_oracle_rng(self):
        # Same rng seed, estimator on/off: the sketch/norm stream must be
        # identical, so the drawn norm-estimate vectors coincide.
        oracle_a, n = self._fresh(31, trace_mode="hutchinson")
        oracle_b, _ = self._fresh(31, trace_mode="identity")
        x = np.full(n, 0.2)
        oracle_a(None, x)
        oracle_b(None, x)
        np.testing.assert_allclose(
            oracle_a._norm_vector, oracle_b._norm_vector, rtol=0, atol=0
        )

    def test_estimator_stats_surface_mode(self):
        oracle, n = self._fresh(33, trace_mode="auto")
        oracle(None, np.full(n, 0.2))
        stats = oracle.trace_estimator.stats()
        assert stats["mode"] == "gram"
        assert stats["calls"] == 1
        assert stats["identity_fallbacks"] == 0
