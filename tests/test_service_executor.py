"""Chaos suite for the concurrent executor: bits never depend on scheduling.

The invariant under test, end to end: on a fixed seed, every terminal
:class:`~repro.service.ServiceResponse` carries **bit-identical** result
fields regardless of

* the worker pool mode and worker count (inline vs thread x {1, 2, 8}),
* injected worker crashes and stalls (kill-and-requeue resumes from the
  latest shipped checkpoint, the PR 8 bit-identical-resume contract),
* hedging races (replicas share ``instance_rng`` streams, so whichever
  finisher wins delivers the same bytes),
* graceful shutdown (suspended work resumes bit-identically via
  ``submit(resume_from=...)``).

Counters (``attempts``, ``resumes``) record the *actual* recovery history
— which replica a shared one-shot fault hits is scheduling-dependent — so
the suite compares result bits and outcomes, never counter equality
across worker counts.

``REPRO_CHAOS_SEED`` (environment) re-seeds services and injections so CI
can sweep the chaos space across runs without touching the code.
"""

import dataclasses
import os

import pytest

from repro.core.batch import instance_rng
from repro.core.decision import DecisionOptions, decision_psdp
from repro.robustness import NaN, Stall, WorkerCrash, clear_faults, inject
from repro.service import (
    CircuitBreaker,
    RequestOutcome,
    SolveService,
    VirtualClock,
    WorkerPool,
)
from repro.service.executor import JobSpec

from helpers import assert_results_identical, factorized_family

CHAOS_SEED = int(os.environ.get("REPRO_CHAOS_SEED", "0"))


@pytest.fixture(autouse=True)
def _no_leftover_faults():
    yield
    clear_faults()


def collection(seed=11):
    # Fresh per solve: first use builds the packed view, which would
    # perturb a later solve's traces() rounding on the same object.
    return factorized_family(seed, n=8, m=24, rank=2, scale=0.35)


def gram_collection(seed=7):
    # Low total rank routes the Taylor engine through the gram kernel,
    # where the ``taylor_gram.apply`` fault site lives.
    return factorized_family(seed, n=6, m=24, rank=1, scale=0.3)


def options(**overrides):
    base = dict(epsilon=0.25, oracle="fast")
    base.update(overrides)
    return DecisionOptions(**base)


def make_service(**overrides):
    kwargs = dict(
        options=options(),
        seed=CHAOS_SEED,
        clock=VirtualClock(),
        heartbeat_every=3,
    )
    kwargs.update(overrides)
    return SolveService(**kwargs)


def neutral(result):
    """Strip fields that legitimately differ across execution strategies.

    Per-attempt budgets land in ``metadata["supervisor"]`` and process-mode
    results drop the unpicklable deferred primal builder
    (``primal_deferred_dropped``); every compared bit — dual witness,
    certified values, counters — must still match exactly.
    """
    meta = {k: v for k, v in result.metadata.items() if k != "primal_deferred_dropped"}
    sup = meta.get("supervisor")
    if isinstance(sup, dict):
        meta["supervisor"] = {
            k: v
            for k, v in sup.items()
            if k not in ("iteration_budget", "wall_clock_budget", "elapsed")
        }
    return dataclasses.replace(result, metadata=meta)


def assert_same_solve(actual, expected, label):
    assert_results_identical(neutral(actual), neutral(expected), label=label)


def solve_fleet(service, n_instances=5):
    """Submit ``n_instances`` distinct instances and drain to completion."""
    rids = [service.submit(collection(seed=20 + i)) for i in range(n_instances)]
    responses = service.drain()
    service.shutdown()
    return [responses[rid] for rid in rids]


class TestWorkerCountInvariance:
    """Result bits are independent of pool mode and worker count."""

    @pytest.mark.parametrize("workers", [1, 2, 8])
    def test_thread_pool_matches_inline(self, workers):
        baseline = solve_fleet(make_service())
        # batch_size=1 forces one job per request so the pool genuinely
        # runs them concurrently — a stronger claim than batched dispatch.
        threaded = solve_fleet(
            make_service(mode="thread", workers=workers, batch_size=1)
        )
        for ref, got in zip(baseline, threaded):
            assert got.outcome is ref.outcome
            assert_same_solve(
                got.result, ref.result, label=f"thread-{workers} rid {ref.request_id}"
            )

    def test_inline_matches_direct_stream_solve(self):
        responses = solve_fleet(make_service(), n_instances=3)
        for i, response in enumerate(responses):
            direct = decision_psdp(
                collection(seed=20 + i),
                options=options(rng=instance_rng(CHAOS_SEED, response.request_id)),
            )
            assert_same_solve(response.result, direct, label=f"direct rid {i}")


class TestCrashRequeue:
    """An injected worker crash costs an attempt, never a bit."""

    @pytest.mark.parametrize("mode,workers", [("inline", 1), ("thread", 2)])
    def test_crash_resumes_bit_identical(self, mode, workers):
        clean = make_service()
        rid_clean = clean.submit(collection())
        reference = clean.drain()[rid_clean]
        assert reference.outcome is RequestOutcome.COMPLETED

        service = make_service(mode=mode, workers=workers)
        with inject("worker.heartbeat", WorkerCrash, at_call=2, seed=CHAOS_SEED) as spec:
            rid = service.submit(collection())
            response = service.drain()[rid]
        service.shutdown()
        assert spec.fires == 1, "the crash fault never fired (solve too short?)"
        assert response.outcome is RequestOutcome.COMPLETED
        assert response.attempts == 1  # the crash consumed one attempt
        assert response.resumes >= 1  # ...and the retry resumed a checkpoint
        assert_same_solve(response.result, reference.result, label=f"crash-{mode}")

    def test_crash_on_final_attempt_is_typed(self):
        service = make_service()
        with inject("worker.heartbeat", WorkerCrash, at_call=2, seed=CHAOS_SEED):
            rid = service.submit(collection(), max_attempts=1)
            response = service.drain()[rid]
        assert response.outcome is RequestOutcome.RETRY_EXHAUSTED
        assert "crashed" in response.detail
        # The shipped checkpoint comes back so the caller can still resume.
        assert response.checkpoint is not None


class TestStallWatchdog:
    """A stalled worker is killed by heartbeat staleness and requeued free."""

    @pytest.mark.parametrize("mode,workers", [("inline", 1), ("thread", 1)])
    def test_stall_is_killed_and_requeued(self, mode, workers):
        clean = make_service()
        rid_clean = clean.submit(collection())
        reference = clean.drain()[rid_clean]

        service = make_service(mode=mode, workers=workers, watchdog_timeout=1.0)
        with inject("worker.heartbeat", Stall, at_call=2, seed=CHAOS_SEED) as spec:
            rid = service.submit(collection())
            response = service.drain()[rid]
        service.shutdown()
        assert spec.fires == 1
        assert response.outcome is RequestOutcome.COMPLETED
        assert response.attempts == 0  # watchdog kills never consume attempts
        assert response.resumes >= 1  # the requeue resumed the shipped checkpoint
        assert_same_solve(response.result, reference.result, label=f"stall-{mode}")

    def test_perpetual_stall_exhausts_requeues(self):
        service = make_service(watchdog_timeout=1.0, max_requeues=2)
        with inject("worker.heartbeat", Stall, at_call=1, times=10**6, seed=CHAOS_SEED):
            rid = service.submit(collection())
            response = service.drain()[rid]
        assert response.outcome is RequestOutcome.RETRY_EXHAUSTED
        assert "stall" in response.detail
        assert response.checkpoint is not None


class TestHedging:
    """Stragglers get a speculative duplicate; the race cannot change bits."""

    def test_hedge_rescues_stalled_straggler(self):
        clean = make_service()
        rid_clean = clean.submit(collection())
        reference = clean.drain()[rid_clean]

        # The primary stalls (one-shot fault); no watchdog — only the
        # hedge twin, launched after 1s in flight, can finish the job.
        service = make_service(mode="thread", workers=2, hedge_after=1.0)
        with inject("worker.heartbeat", Stall, at_call=2, seed=CHAOS_SEED) as spec:
            rid = service.submit(collection())
            response = service.drain()[rid]
        service.shutdown()
        assert spec.fires == 1
        assert response.outcome is RequestOutcome.COMPLETED
        assert_same_solve(response.result, reference.result, label="hedged")

    def test_hedge_on_healthy_job_is_harmless(self):
        baseline = solve_fleet(make_service(), n_instances=2)
        hedged = solve_fleet(
            make_service(mode="thread", workers=2, batch_size=1, hedge_after=0.0),
            n_instances=2,
        )
        for ref, got in zip(baseline, hedged):
            assert got.outcome is ref.outcome
            assert_same_solve(got.result, ref.result, label="hedge-healthy")


class TestCircuitBreaker:
    """Repeated family failures open the breaker; a probe closes it again."""

    def failing_options(self):
        # No recovery ladder: an injected NaN fails the attempt outright.
        return options(max_recoveries=0)

    def test_open_breaker_sheds_family_then_probe_recovers(self):
        service = make_service(
            options=self.failing_options(),
            breaker_threshold=2,
            breaker_cooldown=10.0,
        )
        clock = service._clock
        with inject("taylor_gram.apply", NaN, at_call=1, times=10**6, seed=CHAOS_SEED):
            first = [service.submit(gram_collection(seed=7 + i), max_attempts=1) for i in range(2)]
            for rid in first:
                while service.response(rid) is None:
                    service.step()
                    nxt = service.next_ready_time()
                    if nxt is not None and nxt > clock():
                        clock.advance(nxt - clock())
                assert service.response(rid).outcome is RequestOutcome.RETRY_EXHAUSTED
            # Two consecutive family failures: the breaker is now open.
            shed = service.submit(gram_collection(seed=30), max_attempts=1)
            service.step()
            assert service.response(shed).outcome is RequestOutcome.CIRCUIT_OPEN
        clear_faults()

        # After the cooldown a probe is admitted; its success closes the
        # breaker and subsequent requests of the family run normally.
        clock.advance(10.0)
        probe = service.submit(gram_collection(seed=31))
        follow = service.submit(gram_collection(seed=32))
        responses = service.drain()
        assert responses[probe].outcome in (
            RequestOutcome.COMPLETED,
            RequestOutcome.DEGRADED,
        )
        assert responses[follow].outcome in (
            RequestOutcome.COMPLETED,
            RequestOutcome.DEGRADED,
        )

    def test_breaker_unit_transitions(self):
        breaker = CircuitBreaker(threshold=2, cooldown=5.0)
        assert breaker.peek(0.0) == "run"
        breaker.record_failure(0.0)
        assert breaker.peek(0.0) == "run"  # under threshold: still closed
        breaker.record_failure(1.0)
        assert breaker.peek(1.0) == "shed"  # open
        assert breaker.next_transition() == 6.0
        assert breaker.peek(6.0) == "probe"  # cooldown elapsed
        breaker.begin_probe()
        assert breaker.peek(6.0) == "wait"  # one probe at a time
        breaker.record_failure(7.0)  # probe verdict: still failing
        assert breaker.peek(7.0) == "shed"
        assert breaker.next_transition() == 12.0
        breaker.begin_probe()
        breaker.record_success()
        assert breaker.peek(12.0) == "run"  # closed again
        breaker.begin_probe()
        breaker.abort_probe()  # killed probe releases the slot
        assert breaker.peek(12.0) == "probe"


class TestShutdownSuspend:
    """Shutdown drains to SUSPENDED + checkpoint; resume is bit-identical."""

    def reference(self):
        clean = make_service()
        rid = clean.submit(collection())
        return clean.drain()[rid]

    def test_queued_checkpoint_suspends_and_resumes(self):
        service = make_service(attempt_iteration_budget=5)
        rid = service.submit(collection())
        service.step()  # one budget slice: the request now holds a checkpoint
        responses = service.shutdown()
        suspended = responses[rid]
        assert suspended.outcome is RequestOutcome.SUSPENDED
        assert suspended.checkpoint is not None

        resumed_service = make_service()
        new_rid = resumed_service.submit(
            collection(), resume_from=suspended.checkpoint
        )
        assert new_rid == rid  # same stream: fresh service, same seed
        response = resumed_service.drain()[new_rid]
        assert response.outcome is RequestOutcome.COMPLETED
        assert_same_solve(
            response.result, self.reference().result, label="suspend-resume"
        )

    def test_in_flight_job_suspends_with_shipped_checkpoint(self):
        service = make_service(mode="thread", workers=1)
        with inject("worker.heartbeat", Stall, at_call=2, seed=CHAOS_SEED):
            rid = service.submit(collection())
            service.step()  # dispatch; the worker beats once, then parks
            deadline = 100
            while service._pool.in_flight() and deadline:
                service._pool.wait(timeout=0.05)
                if service._pool.observe():
                    break
                deadline -= 1
            responses = service.shutdown()
        suspended = responses[rid]
        assert suspended.outcome is RequestOutcome.SUSPENDED
        assert suspended.checkpoint is not None

        resumed_service = make_service()
        new_rid = resumed_service.submit(
            collection(), resume_from=suspended.checkpoint
        )
        response = resumed_service.drain()[new_rid]
        assert response.outcome is RequestOutcome.COMPLETED
        assert_same_solve(
            response.result, self.reference().result, label="inflight-suspend"
        )

    def test_submissions_after_shutdown_are_shed(self):
        service = make_service()
        service.shutdown()
        rid = service.submit(collection())
        response = service.response(rid)
        assert response.outcome is RequestOutcome.SHED
        assert "shutting down" in response.detail


class TestBackpressure:
    """max_in_flight bounds dispatch; queued work waits, nothing drops."""

    def test_in_flight_bound_is_respected(self):
        service = make_service(mode="thread", workers=2, batch_size=1, max_in_flight=1)
        rids = [service.submit(collection(seed=40 + i)) for i in range(3)]
        service.step()
        assert len(service._pool.in_flight()) <= 1
        assert service.pending() == 3
        responses = service.drain()
        service.shutdown()
        assert all(responses[rid].outcome is RequestOutcome.COMPLETED for rid in rids)


class TestProcessMode:
    """Crash isolation across a real process boundary."""

    def test_process_pool_matches_inline(self, tmp_path):
        baseline = solve_fleet(make_service(), n_instances=2)
        procs = solve_fleet(
            make_service(mode="process", workers=1, control_dir=str(tmp_path)),
            n_instances=2,
        )
        for ref, got in zip(baseline, procs):
            assert got.outcome is ref.outcome
            assert_same_solve(got.result, ref.result, label="process-mode")

    def test_fault_plan_crosses_process_boundary(self, tmp_path):
        # The fault is armed in THIS process; the pool worker must install
        # the serialized plan, fire the crash there, and sync the consumed
        # counter back so the retry does not fire it again.
        service = make_service(mode="process", workers=1, control_dir=str(tmp_path))
        with inject("worker.heartbeat", WorkerCrash, at_call=2, seed=CHAOS_SEED) as spec:
            rid = service.submit(collection())
            response = service.drain()[rid]
        service.shutdown()
        assert spec.fires == 1  # synced back from the worker process
        assert response.outcome is RequestOutcome.COMPLETED
        assert response.attempts == 1
        assert response.resumes >= 1
        reference = self_reference = make_service()
        ref_rid = self_reference.submit(collection())
        assert_same_solve(
            response.result,
            self_reference.drain()[ref_rid].result,
            label="process-crash",
        )


class TestWorkerPoolUnit:
    """Pool-level behaviours that the service tests exercise indirectly."""

    def spec(self, job_id=0, seed=0):
        return JobSpec(
            job_id=job_id,
            request_ids=[0],
            constraints=[collection()],
            options=options(checkpoint_every=3),
            seed=seed,
        )

    def test_inline_pool_runs_at_submit(self):
        pool = WorkerPool(mode="inline")
        job = pool.submit(self.spec())
        assert job.future.done()
        [(done, report)] = pool.poll()
        assert done is job and report.status == "done"
        assert len(report.results) == 1
        assert not pool.in_flight()
        pool.shutdown()

    def test_kill_is_idempotent_and_cooperative(self):
        pool = WorkerPool(mode="thread", workers=1)
        with inject("worker.heartbeat", Stall, at_call=1, seed=CHAOS_SEED):
            job = pool.submit(self.spec())
            for _ in range(200):
                pool.wait(timeout=0.05)
                if pool.observe():
                    break
            pool.kill(job.spec.job_id, "watchdog")
            pool.kill(job.spec.job_id, "shutdown")  # first reason sticks
            assert job.killed == "watchdog"
            for _ in range(200):
                pool.wait(timeout=0.05)
                if job.future.done():
                    break
            [(_, report)] = pool.poll()
        assert report.status == "cancelled"
        assert job.shipped  # the pre-stall heartbeat shipped a checkpoint
        pool.shutdown()
