"""Tests for repro.linalg.factorization (Gram factors, inverse square roots)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import NumericalError
from repro.linalg.factorization import (
    gram_factor,
    gram_factor_lowrank,
    inverse_sqrt,
    pivoted_cholesky,
    sqrt_psd,
)
from repro.linalg.psd import random_psd


class TestGramFactor:
    def test_reconstruction(self, small_psd):
        q = gram_factor(small_psd)
        np.testing.assert_allclose(q @ q.T, small_psd, atol=1e-9)

    def test_rank_deficient_width(self, rng):
        mat = random_psd(6, rank=2, rng=rng)
        q = gram_factor(mat)
        assert q.shape[1] == 2
        np.testing.assert_allclose(q @ q.T, mat, atol=1e-9)

    def test_zero_matrix(self):
        q = gram_factor(np.zeros((4, 4)))
        assert q.shape == (4, 1)
        np.testing.assert_array_equal(q, 0.0)


class TestGramFactorLowRank:
    def test_exact_when_rank_suffices(self, rng):
        mat = random_psd(5, rank=2, rng=rng)
        q = gram_factor_lowrank(mat, 2)
        np.testing.assert_allclose(q @ q.T, mat, atol=1e-9)

    def test_truncation_error_bounded(self, rng):
        mat = random_psd(6, rng=rng)
        q = gram_factor_lowrank(mat, 3)
        eigvals = np.sort(np.linalg.eigvalsh(mat))[::-1]
        err = np.linalg.norm(q @ q.T - mat, ord=2)
        assert err <= eigvals[3] + 1e-9

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            gram_factor_lowrank(np.eye(3), 0)


class TestPivotedCholesky:
    def test_reconstruction_full_rank(self, small_psd):
        factor = pivoted_cholesky(small_psd)
        np.testing.assert_allclose(factor @ factor.T, small_psd, atol=1e-8)

    def test_rank_deficient(self, rng):
        mat = random_psd(6, rank=3, rng=rng)
        factor = pivoted_cholesky(mat)
        assert factor.shape[1] <= 4
        np.testing.assert_allclose(factor @ factor.T, mat, atol=1e-8)

    def test_max_rank_truncation(self, small_psd):
        factor = pivoted_cholesky(small_psd, max_rank=2)
        assert factor.shape[1] == 2

    def test_zero_matrix(self):
        factor = pivoted_cholesky(np.zeros((3, 3)))
        np.testing.assert_array_equal(factor, np.zeros((3, 1)))


class TestSqrtAndInverseSqrt:
    def test_sqrt_squares_back(self, small_psd):
        root = sqrt_psd(small_psd)
        np.testing.assert_allclose(root @ root, small_psd, atol=1e-9)

    def test_inverse_sqrt_whitens(self, rng):
        mat = random_psd(5, rng=rng, scale=3.0) + 0.5 * np.eye(5)
        inv_root = inverse_sqrt(mat)
        np.testing.assert_allclose(inv_root @ mat @ inv_root, np.eye(5), atol=1e-8)

    def test_inverse_sqrt_pseudo_on_singular(self, rng):
        mat = random_psd(6, rank=3, rng=rng)
        inv_root = inverse_sqrt(mat)
        projector = inv_root @ mat @ inv_root
        # On the range of the matrix this acts as the identity (a projector).
        np.testing.assert_allclose(projector @ projector, projector, atol=1e-8)
        assert np.trace(projector) == pytest.approx(3.0, abs=1e-6)

    def test_inverse_sqrt_zero_matrix_raises(self):
        with pytest.raises(NumericalError):
            inverse_sqrt(np.zeros((3, 3)))


@settings(max_examples=20, deadline=None)
@given(
    dim=st.integers(min_value=1, max_value=7),
    rank=st.integers(min_value=1, max_value=7),
    seed=st.integers(min_value=0, max_value=9999),
)
def test_gram_factor_roundtrip_property(dim, rank, seed):
    """Property: gram_factor exactly reconstructs arbitrary random PSD matrices."""
    rank = min(rank, dim)
    mat = random_psd(dim, rank=rank, rng=seed)
    q = gram_factor(mat)
    np.testing.assert_allclose(q @ q.T, mat, atol=1e-8)
