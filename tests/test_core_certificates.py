"""Tests for certificate verification."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import CertificateError
from repro.linalg.psd import random_psd
from repro.operators.collection import ConstraintCollection
from repro.core.certificates import (
    approximation_ratio,
    require_dual_certificate,
    verify_dual,
    verify_primal,
)


class TestVerifyDual:
    def test_zero_vector_feasible(self, small_collection):
        cert = verify_dual(small_collection, np.zeros(4))
        assert cert.feasible
        assert cert.value == 0.0

    def test_large_vector_infeasible(self, small_collection):
        cert = verify_dual(small_collection, np.full(4, 100.0))
        assert not cert.feasible
        assert cert.lambda_max > 1.0

    def test_scaled_value_restores_feasibility(self, small_collection):
        x = np.full(4, 100.0)
        cert = verify_dual(small_collection, x)
        rescaled = verify_dual(small_collection, x / cert.lambda_max)
        assert rescaled.feasible
        assert rescaled.value == pytest.approx(cert.scaled_value, rel=1e-9)

    def test_negative_entries_flagged(self, small_collection):
        cert = verify_dual(small_collection, np.array([-0.1, 0.0, 0.0, 0.0]))
        assert not cert.feasible
        assert cert.min_entry == pytest.approx(-0.1)

    def test_wrong_length(self, small_collection):
        with pytest.raises(ValueError):
            verify_dual(small_collection, np.zeros(3))

    def test_boundary_feasible_within_tolerance(self, rng):
        mat = random_psd(4, rng=rng, scale=1.0)
        collection = ConstraintCollection([mat])
        cert = verify_dual(collection, np.array([1.0]))
        assert cert.feasible
        assert cert.lambda_max == pytest.approx(1.0, abs=1e-9)


class TestVerifyPrimal:
    def test_scaled_identity_feasible(self, small_collection):
        traces = small_collection.traces()
        y = np.eye(5) * (5.0 / float(traces.min()))
        cert = verify_primal(small_collection, y)
        assert cert.feasible
        assert cert.min_dot >= 1.0 - 1e-9

    def test_zero_matrix_infeasible(self, small_collection):
        cert = verify_primal(small_collection, np.zeros((5, 5)))
        assert not cert.feasible
        assert cert.scaled_value == float("inf")

    def test_scaled_value_restores_feasibility(self, small_collection):
        y = np.eye(5) * 0.01
        cert = verify_primal(small_collection, y)
        if not cert.feasible and cert.min_dot > 0:
            rescaled = verify_primal(small_collection, y / cert.min_dot)
            assert rescaled.feasible
            assert rescaled.value == pytest.approx(cert.scaled_value, rel=1e-9)

    def test_non_psd_candidate_rejected(self, small_collection):
        y = np.diag([10.0, 10.0, 10.0, 10.0, -1.0])
        cert = verify_primal(small_collection, y)
        assert not cert.feasible


class TestRequireDualCertificate:
    def test_passes_on_feasible(self, small_collection):
        cert = require_dual_certificate(small_collection, np.zeros(4), min_value=0.0)
        assert cert.feasible

    def test_raises_on_infeasible(self, small_collection):
        with pytest.raises(CertificateError):
            require_dual_certificate(small_collection, np.full(4, 100.0), min_value=0.0)

    def test_raises_on_low_value(self, small_collection):
        with pytest.raises(CertificateError):
            require_dual_certificate(small_collection, np.zeros(4), min_value=1.0)


class TestApproximationRatio:
    def test_ratio_of_matching_bounds(self, small_collection):
        traces = small_collection.traces()
        dual = verify_dual(small_collection, np.zeros(4).copy() + 1e-3)
        primal = verify_primal(small_collection, np.eye(5) * (5.0 / float(traces.min())))
        ratio = approximation_ratio(dual, primal)
        assert ratio >= 1.0 or ratio == float("inf")

    def test_infinite_when_lower_zero(self, small_collection):
        dual = verify_dual(small_collection, np.zeros(4))
        primal = verify_primal(small_collection, np.eye(5) * 100.0)
        assert approximation_ratio(dual, primal) == float("inf")
