"""Tests for repro.utils.{timer, tables, random_utils, logging_utils}."""

from __future__ import annotations

import logging
import time

import numpy as np
import pytest

from repro.utils.logging_utils import enable_verbose_logging, get_logger
from repro.utils.random_utils import (
    as_generator,
    random_orthogonal,
    random_partition,
    random_unit_vector,
    spawn_generators,
)
from repro.utils.tables import format_table, write_csv
from repro.utils.timer import Timer, timed


class TestTimer:
    def test_accumulates(self):
        timer = Timer()
        with timer:
            time.sleep(0.002)
        with timer:
            time.sleep(0.002)
        assert timer.elapsed >= 0.004
        assert len(timer.laps) == 2

    def test_double_start_rejected(self):
        timer = Timer()
        timer.start()
        with pytest.raises(RuntimeError):
            timer.start()
        timer.stop()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Timer().stop()

    def test_reset(self):
        timer = Timer()
        with timer:
            pass
        timer.reset()
        assert timer.elapsed == 0.0
        assert timer.laps == []
        assert not timer.running

    def test_timed_context_reports(self):
        messages = []
        with timed("unit-test", sink=messages.append):
            pass
        assert len(messages) == 1
        assert "unit-test" in messages[0]


class TestTables:
    def test_format_dict_rows(self):
        text = format_table([{"a": 1, "b": 2.5}, {"a": 10, "b": 0.25}], title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5

    def test_format_sequence_rows_requires_headers(self):
        with pytest.raises(ValueError):
            format_table([[1, 2]], headers=None)

    def test_format_empty(self):
        assert "(no rows)" in format_table([])

    def test_bool_rendering(self):
        text = format_table([{"ok": True}, {"ok": False}])
        assert "yes" in text and "no" in text

    def test_write_csv_creates_directories(self, tmp_path):
        path = write_csv(tmp_path / "sub" / "data.csv", [{"x": 1, "y": "a"}])
        content = open(path).read()
        assert "x,y" in content and "1,a" in content

    def test_write_csv_missing_keys(self, tmp_path):
        path = write_csv(tmp_path / "data.csv", [{"x": 1}, {"y": 2}], headers=["x", "y"])
        lines = open(path).read().strip().splitlines()
        assert lines[1] == "1,"
        assert lines[2] == ",2"


class TestRandomUtils:
    def test_as_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_as_generator_seed_reproducible(self):
        assert as_generator(42).integers(1000) == as_generator(42).integers(1000)

    def test_as_generator_default_seed(self):
        a = as_generator(None).integers(1000)
        b = as_generator(None).integers(1000)
        assert a == b  # default seed comes from config

    def test_spawn_generators_independent(self):
        gens = spawn_generators(7, 3)
        values = [g.integers(10**6) for g in gens]
        assert len(set(values)) == 3

    def test_spawn_negative_count(self):
        with pytest.raises(ValueError):
            spawn_generators(0, -1)

    def test_random_orthogonal(self):
        q = random_orthogonal(5, rng=1)
        np.testing.assert_allclose(q @ q.T, np.eye(5), atol=1e-10)

    def test_random_unit_vector(self):
        v = random_unit_vector(7, rng=2)
        assert np.linalg.norm(v) == pytest.approx(1.0)

    def test_random_partition_sums(self):
        parts = random_partition(5.0, 4, rng=3)
        assert parts.shape == (4,)
        assert parts.sum() == pytest.approx(5.0)
        assert np.all(parts >= 0)

    def test_random_partition_invalid(self):
        with pytest.raises(ValueError):
            random_partition(1.0, 0)


class TestLogging:
    def test_get_logger_namespacing(self):
        assert get_logger().name == "repro"
        assert get_logger("core").name == "repro.core"
        assert get_logger("repro.linalg").name == "repro.linalg"

    def test_enable_verbose_idempotent(self):
        logger = enable_verbose_logging(logging.DEBUG)
        handlers_before = len(logger.handlers)
        enable_verbose_logging(logging.DEBUG)
        assert len(logger.handlers) == handlers_before
