"""Tests for repro.linalg.taylor_gram (the rank-adaptive exponential engine).

Every representation the engine can select — Gram-space, densified ``Psi``,
sparse-CSR ``Psi``, scaled factor recurrence — must evaluate exactly the
same Lemma 4.2 polynomial as the per-term reference
:func:`repro.linalg.taylor.taylor_expm_apply`, and the incremental engine
must reach the same state as a from-scratch build while touching only the
active columns.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import InvalidProblemError, NumericalError
from repro.linalg.taylor import taylor_expm_apply
from repro.linalg.taylor_blocked import BlockedTaylorKernel
from repro.linalg.taylor_gram import (
    GRAM_HYSTERESIS,
    SPARSE_GEMM_DISCOUNT,
    GramTaylorKernel,
    SparsePsiAccumulator,
    TaylorEngine,
    gram_taylor_apply,
    select_taylor_mode,
)
from repro.operators import ConstraintCollection, FactorizedPSDOperator, PackedGramFactors
from repro.core.dotexp import FastDotExpOracle, big_dot_exp
from repro.parallel.backends import SerialBackend
from repro.parallel.workdepth import WorkDepthTracker


def _stack(m, r, seed, sparse=False, density=0.2):
    rng = np.random.default_rng(seed)
    if sparse:
        mat = sp.random(m, r, density=density, random_state=rng, format="csr")
        return mat if mat.nnz else sp.csr_matrix(np.eye(m)[:, :r])
    return rng.standard_normal((m, r)) / np.sqrt(m)


def _psi_of(q, w):
    if sp.issparse(q):
        return np.asarray((q.multiply(w[None, :]) @ q.T).todense())
    return (q * w) @ q.T


class TestGramKernelEquivalence:
    def test_matches_reference_per_column(self):
        m, r, s, degree = 26, 8, 9, 18
        q = _stack(m, r, seed=1)
        w = np.random.default_rng(2).random(r)
        block = np.random.default_rng(3).standard_normal((m, s))
        out = GramTaylorKernel(q, w).apply(block, degree)
        psi = _psi_of(q, w)
        for j in range(s):
            ref = taylor_expm_apply(psi, block[:, j], degree)
            np.testing.assert_allclose(out[:, j], ref, atol=1e-10, rtol=0)

    def test_scale_half_matches_reference(self):
        m, r, degree = 16, 5, 14
        q = _stack(m, r, seed=4)
        w = np.random.default_rng(5).random(r)
        vec = np.random.default_rng(6).standard_normal(m)
        out = GramTaylorKernel(q, w).apply(vec, degree, scale=0.5)
        ref = taylor_expm_apply(0.5 * _psi_of(q, w), vec, degree)
        np.testing.assert_allclose(out, ref, atol=1e-12)
        assert out.shape == (m,)

    def test_sparse_stack_matches_reference(self):
        m, r, degree = 30, 9, 16
        q = _stack(m, r, seed=7, sparse=True)
        w = np.random.default_rng(8).random(r)
        block = np.random.default_rng(9).standard_normal((m, 4))
        out = GramTaylorKernel(q, w).apply(block, degree)
        np.testing.assert_allclose(
            out, taylor_expm_apply(_psi_of(q, w), block, degree), atol=1e-10
        )

    def test_matches_blocked_kernel(self):
        m, r, degree = 22, 6, 15
        q = _stack(m, r, seed=10)
        w = np.random.default_rng(11).random(r)
        block = np.random.default_rng(12).standard_normal((m, 5))
        np.testing.assert_allclose(
            GramTaylorKernel(q, w).apply(block, degree, scale=0.5),
            BlockedTaylorKernel(q, w).apply(block, degree, scale=0.5),
            atol=1e-11,
        )

    def test_precomputed_gram_matches_internal(self):
        m, r = 18, 5
        q = _stack(m, r, seed=13)
        w = np.random.default_rng(14).random(r)
        gram = (q.T @ q) * w
        block = np.random.default_rng(15).standard_normal((m, 3))
        np.testing.assert_array_equal(
            GramTaylorKernel(q, w, gram=gram).apply(block, 12),
            GramTaylorKernel(q, w).apply(block, 12),
        )

    def test_degree_one_is_identity(self):
        q = _stack(10, 3, seed=16)
        block = np.random.default_rng(17).standard_normal((10, 4))
        np.testing.assert_array_equal(
            GramTaylorKernel(q, np.ones(3)).apply(block, 1), block
        )

    def test_degree_two_is_affine(self):
        q = _stack(10, 3, seed=18)
        w = np.random.default_rng(19).random(3)
        block = np.random.default_rng(20).standard_normal((10, 2))
        out = GramTaylorKernel(q, w).apply(block, 2, scale=0.5)
        np.testing.assert_allclose(out, block + 0.5 * _psi_of(q, w) @ block, atol=1e-12)

    def test_zero_rank_stack_is_identity_polynomial(self):
        block = np.random.default_rng(21).standard_normal((7, 3))
        kernel = GramTaylorKernel(np.zeros((7, 0)), np.zeros(0))
        np.testing.assert_array_equal(kernel.apply(block, 9), block)

    def test_chunked_identical_to_unchunked(self):
        m, r, s = 20, 6, 13
        q = _stack(m, r, seed=22)
        w = np.random.default_rng(23).random(r)
        block = np.random.default_rng(24).standard_normal((m, s))
        kernel = GramTaylorKernel(q, w)
        for chunk in (1, 4, 7, 100):
            np.testing.assert_allclose(
                kernel.apply(block, 12),
                kernel.apply(block, 12, chunk_columns=chunk),
                rtol=1e-12,
                atol=1e-12,
            )

    def test_matvec_and_count(self):
        m, r = 14, 4
        q = _stack(m, r, seed=25)
        w = np.random.default_rng(26).random(r)
        kernel = GramTaylorKernel(q, w)
        vec = np.random.default_rng(27).standard_normal(m)
        np.testing.assert_allclose(kernel.matvec(vec), _psi_of(q, w) @ vec, atol=1e-12)
        kernel.apply(np.ones((m, 5)), 7)
        assert kernel.matvec_count == 5 * 6
        kernel.apply(np.ones(m), 4)
        assert kernel.matvec_count == 5 * 6 + 3

    def test_convenience_wrapper(self):
        q = _stack(12, 3, seed=28)
        block = np.random.default_rng(29).standard_normal((12, 2))
        np.testing.assert_array_equal(
            gram_taylor_apply(q, np.ones(3), block, 9),
            GramTaylorKernel(q, np.ones(3)).apply(block, 9),
        )

    def test_validation(self):
        q = _stack(8, 2, seed=30)
        with pytest.raises(InvalidProblemError):
            GramTaylorKernel(q, np.ones(3))
        with pytest.raises(InvalidProblemError):
            GramTaylorKernel(q, np.array([1.0, -1.0]))
        with pytest.raises(InvalidProblemError):
            GramTaylorKernel(q, np.ones(2), gram=np.ones((3, 3)))
        kernel = GramTaylorKernel(q, np.ones(2))
        with pytest.raises(ValueError):
            kernel.apply(np.ones(8), 0)
        with pytest.raises(InvalidProblemError):
            kernel.apply(np.ones((7, 2)), 3)

    def test_overflow_detection(self):
        q = np.diag([30.0, 0.0])
        with pytest.raises(NumericalError):
            GramTaylorKernel(q, np.ones(2)).apply(np.full(2, 1e300), 60)


class TestSparsePsiAccumulator:
    def _accumulator(self, m=24, r=10, seed=40, density=0.15):
        q = _stack(m, r, seed=seed, sparse=True, density=density)
        return q, SparsePsiAccumulator(q)

    def test_values_match_direct_product(self):
        q, acc = self._accumulator()
        w = np.random.default_rng(41).random(q.shape[1])
        psi = acc.psi(acc.values(w))
        np.testing.assert_allclose(psi.toarray(), _psi_of(q, w), atol=1e-12)

    def test_pattern_is_weight_independent(self):
        q, acc = self._accumulator()
        r = q.shape[1]
        psi_a = acc.psi(acc.values(np.ones(r)))
        psi_b = acc.psi(acc.values(np.random.default_rng(42).random(r)))
        np.testing.assert_array_equal(psi_a.indices, psi_b.indices)
        np.testing.assert_array_equal(psi_a.indptr, psi_b.indptr)

    def test_incremental_update_matches_rebuild(self):
        q, acc = self._accumulator()
        r = q.shape[1]
        rng = np.random.default_rng(43)
        w = rng.random(r)
        values = acc.values(w)
        for _ in range(4):
            w_new = w.copy()
            touched = rng.choice(r, size=3, replace=False)
            w_new[touched] = rng.random(3)
            delta = w_new - w
            active = np.flatnonzero(delta)
            acc.update_values(values, active, delta[active])
            np.testing.assert_allclose(values, acc.values(w_new), atol=1e-12)
            w = w_new

    def test_zero_rank_columns_contribute_nothing(self):
        q = sp.hstack(
            [_stack(12, 3, seed=44, sparse=True), sp.csr_matrix((12, 2))], format="csr"
        )
        acc = SparsePsiAccumulator(q)
        w = np.ones(5)
        np.testing.assert_allclose(
            acc.psi(acc.values(w)).toarray(), _psi_of(q, w), atol=1e-12
        )
        assert acc.column_cost(np.array([3, 4])) == 0

    def test_column_cost_proportional(self):
        q, acc = self._accumulator()
        all_cols = np.arange(q.shape[1])
        assert acc.column_cost(all_cols) == acc.map_nnz
        assert acc.column_cost(all_cols[:2]) <= acc.map_nnz

    def test_rejects_dense_input(self):
        with pytest.raises(InvalidProblemError):
            SparsePsiAccumulator(np.ones((4, 2)))

    def test_rejects_wrong_weight_length(self):
        _, acc = self._accumulator()
        with pytest.raises(InvalidProblemError):
            acc.values(np.ones(acc.total_rank + 1))


class TestSelectTaylorMode:
    def test_gram_at_and_below_half_rank(self):
        # The 2R == m boundary belongs to the Gram-space path.
        assert select_taylor_mode(100, 50, 5000, False) == "gram"
        assert select_taylor_mode(100, 49, 4900, False) == "gram"
        assert select_taylor_mode(100, 0, 0, False) == "gram"

    def test_gram_hysteresis_keeps_near_threshold_stacks(self):
        # 2R just past m stays on the Gram path (R^2 ~ m^2/4 still beats
        # the densified m^2 recurrence); the ~10% hysteresis margin is the
        # near-threshold fix of the E14 PR.
        assert select_taylor_mode(100, 51, 5100, False) == "gram"
        assert select_taylor_mode(100, 55, 5500, False) == "gram"  # 2R = 1.1 m
        assert select_taylor_mode(100, 56, 5600, False) == "dense-psi"

    def test_dense_stack_above_hysteresis_densifies(self):
        assert select_taylor_mode(100, 60, 6000, False) == "dense-psi"
        assert select_taylor_mode(100, 400, 40000, False) == "dense-psi"

    def test_e13_near_threshold_row_no_flip_flop(self):
        # The E13 adversary row (n=33, m=128, rank 2 -> 2R = m + 4) used to
        # break even on the legacy densified kernel; with the hysteresis it
        # selects gram, and every selection surface — the pure function,
        # the packed view's cached auto mode, one-shot kernels, and the
        # engine — must agree and stay stable across repeated calls.
        m, n, rank = 128, 33, 2
        assert 2 * n * rank == m + 4  # just past the sharp boundary
        assert 2 * n * rank <= GRAM_HYSTERESIS * m
        assert select_taylor_mode(m, n * rank, m * n * rank, False) == "gram"
        packed = _packed(n, m, rank=rank, seed=59)
        first = packed.auto_taylor_mode()
        assert first == "gram"
        for _ in range(3):
            assert packed.auto_taylor_mode() == first
        x = np.random.default_rng(60).random(n)
        assert packed.taylor_kernel(x).mode == "gram"
        assert packed.taylor_engine().mode == "gram"

    def test_sparse_psi_when_pattern_is_small(self):
        m, r = 512, 600
        assert (
            select_taylor_mode(m, r, 1200, True, psi_nnz=2000) == "sparse-psi"
        )

    def test_sparse_dense_boundary(self):
        # At the densification threshold the discounted factor cost equals
        # m^2 exactly; ties break toward the denser representation.
        m, r = 128, 130
        nnz_at_threshold = int(m * m / (2 * SPARSE_GEMM_DISCOUNT))
        assert select_taylor_mode(m, r, nnz_at_threshold, True) == "dense-psi"
        assert select_taylor_mode(m, r, nnz_at_threshold - 1, True) == "sparse-factors"
        assert select_taylor_mode(m, r, nnz_at_threshold + 1, True) == "dense-psi"

    def test_sparse_factor_beats_psi_on_tall_patterns(self):
        # Columns with many nonzeros blow up nnz(Psi) quadratically; the
        # factor recurrence stays linear in nnz(Q).
        assert (
            select_taylor_mode(512, 600, 1200, True, psi_nnz=10**5) == "sparse-factors"
        )

    def test_negative_inputs_rejected(self):
        with pytest.raises(InvalidProblemError):
            select_taylor_mode(-1, 0, 0, False)


def _packed(n, m, rank=2, seed=50, sparse=False, density=0.1, scale=0.3):
    rng = np.random.default_rng(seed)
    factors = []
    for _ in range(n):
        if sparse:
            f = sp.random(m, rank, density=density, random_state=rng, format="csr")
            if f.nnz == 0:
                f = sp.csr_matrix(
                    (np.full(rank, scale), (rng.integers(0, m, rank), np.arange(rank))),
                    shape=(m, rank),
                )
            factors.append(f)
        else:
            factors.append(scale * rng.standard_normal((m, rank)))
    return PackedGramFactors(factors)


class TestTaylorEngine:
    @pytest.mark.parametrize(
        "mode,sparse",
        [
            ("gram", False),
            ("gram", True),
            ("dense-psi", False),
            ("dense-psi", True),
            ("dense-factors", False),
            ("sparse-factors", True),
            ("sparse-psi", True),
        ],
    )
    def test_incremental_state_matches_rebuild(self, mode, sparse):
        packed = _packed(8, 18, sparse=sparse, seed=51)
        engine = packed.taylor_engine(mode=mode)
        rng = np.random.default_rng(52)
        block = rng.standard_normal((18, 5))
        x = rng.random(8)
        for step in range(4):
            kernel = engine.kernel_for(x)
            col_w = packed.expand_weights(x)
            psi = _psi_of(packed.matrix, col_w)
            np.testing.assert_allclose(
                kernel.apply(block, 12, scale=0.5),
                taylor_expm_apply(0.5 * psi, block, 12),
                atol=1e-9,
            )
            # Perturb a couple of coordinates, as the solver does.
            x = x.copy()
            x[rng.integers(0, 8)] *= 1.4
            x[rng.integers(0, 8)] = 0.0
        assert engine.full_builds == 1
        assert engine.incremental_updates >= 1

    def test_engine_cached_on_packed_view(self):
        packed = _packed(5, 16)
        assert packed.taylor_engine() is packed.taylor_engine()
        assert packed.taylor_engine(mode="dense-psi") is not packed.taylor_engine()

    def test_updates_touch_only_active_columns(self):
        packed = _packed(10, 40, seed=53)  # R = 20 <= m/2 -> gram
        engine = packed.taylor_engine()
        assert engine.mode == "gram"
        x = np.random.default_rng(54).random(10)
        engine.kernel_for(x)
        x2 = x.copy()
        x2[3] *= 2.0
        engine.kernel_for(x2)
        assert engine.full_builds == 1
        assert engine.incremental_updates == 1
        assert engine.columns_updated == int(packed.ranks[3])
        # Unchanged weights: no update at all.
        engine.kernel_for(x2)
        assert engine.incremental_updates == 1

    def test_charges_backend_proportionally(self):
        packed = _packed(10, 40, seed=55)
        engine = packed.taylor_engine()
        tracker = WorkDepthTracker()
        backend = SerialBackend(tracker=tracker)
        x = np.random.default_rng(56).random(10)
        engine.kernel_for(x, backend=backend)
        full_charge = tracker.by_label["taylor-engine-update"]
        x2 = x.copy()
        x2[0] *= 1.5
        engine.kernel_for(x2, backend=backend)
        incremental = tracker.by_label["taylor-engine-update"] - full_charge
        # One active constraint of rank 2 out of R=20 columns: the update
        # charge must be the per-column rate, not another full build.
        assert incremental == pytest.approx(engine.total_rank * packed.ranks[0])
        assert incremental < full_charge
        assert tracker.by_label["taylor-engine-update"] == engine.charged_work

    def test_zero_rank_engine(self):
        packed = PackedGramFactors([np.zeros((6, 0)), np.zeros((6, 0))])
        engine = packed.taylor_engine()
        kernel = engine.kernel_for(np.zeros(2))
        block = np.random.default_rng(57).standard_normal((6, 3))
        np.testing.assert_array_equal(kernel.apply(block, 8), block)

    def test_mode_validation(self):
        dense = _packed(4, 12)
        with pytest.raises(InvalidProblemError):
            dense.taylor_engine(mode="sparse-psi")
        with pytest.raises(InvalidProblemError):
            dense.taylor_engine(mode="bogus")
        sparse = _packed(4, 12, sparse=True, seed=58)
        with pytest.raises(InvalidProblemError):
            sparse.taylor_engine(mode="dense-factors")


class TestOracleIntegration:
    def _collection(self, n=10, m=40, seed=60):
        rng = np.random.default_rng(seed)
        return ConstraintCollection(
            [FactorizedPSDOperator(0.3 * rng.standard_normal((m, 2))) for _ in range(n)]
        )

    def test_big_dot_exp_accepts_gram_kernel(self):
        coll = self._collection()
        packed = coll.packed()
        x = np.random.default_rng(61).random(len(coll)) / len(coll)
        kernel = packed.taylor_kernel(x)
        assert isinstance(kernel, GramTaylorKernel)
        fused = big_dot_exp(kernel, packed, kappa=2.0, eps=0.2, use_sketch=False)
        loop = big_dot_exp(
            packed.matvec_fn(x), packed, kappa=2.0, eps=0.2, use_sketch=False,
            dim=coll.dim,
        )
        np.testing.assert_allclose(fused, loop, rtol=1e-10, atol=1e-12)

    def test_oracle_engine_matches_legacy_kernel(self):
        x = np.random.default_rng(62).random(10) / 10
        outputs = {}
        for engine in (True, False):
            oracle = FastDotExpOracle(
                self._collection(), eps=0.1, rng=19, engine=engine
            )
            outputs[engine] = oracle(np.zeros((40, 40)), x)
        np.testing.assert_allclose(
            outputs[True].values, outputs[False].values, rtol=1e-9, atol=1e-12
        )
        assert outputs[True].trace == pytest.approx(outputs[False].trace, rel=1e-9)

    def test_oracle_reuses_engine_across_calls(self):
        coll = self._collection()
        oracle = FastDotExpOracle(coll, eps=0.1, rng=20)
        x = np.random.default_rng(63).random(len(coll)) / len(coll)
        assert oracle.taylor_engine is None
        oracle(np.zeros((coll.dim, coll.dim)), x)
        engine = oracle.taylor_engine
        assert engine is not None and engine.full_builds == 1
        x2 = x.copy()
        x2[4] *= 1.2
        oracle(np.zeros((coll.dim, coll.dim)), x2)
        assert oracle.taylor_engine is engine
        assert engine.full_builds == 1
        assert engine.incremental_updates == 1

    def test_oracles_share_engine_through_collection(self):
        coll = self._collection()
        x = np.random.default_rng(64).random(len(coll)) / len(coll)
        first = FastDotExpOracle(coll, eps=0.1, rng=21)
        first(np.zeros((coll.dim, coll.dim)), x)
        second = FastDotExpOracle(coll, eps=0.1, rng=22)
        second(np.zeros((coll.dim, coll.dim)), x)
        assert second.taylor_engine is first.taylor_engine
        assert second.taylor_engine.full_builds == 1


class TestSelectionCostModel:
    def test_sparse_low_rank_stack_keeps_factor_recurrence(self):
        # 1500 rank-1 constraints with ~4 nnz each in m=4000: 2R <= m, but
        # a dense 1500x1500 Gram matrix (R^2 per term) would be a large
        # regression over the 2*nnz-per-term sparse factor recurrence.
        assert (
            select_taylor_mode(4000, 1500, 6000, True, psi_nnz=24000)
            == "sparse-factors"
        )

    def test_sparse_gram_still_wins_when_cheapest(self):
        # Dense-ish sparse stack with small R: R^2 undercuts everything.
        assert select_taylor_mode(100, 20, 1000, True, psi_nnz=5000) == "gram"

    def test_mode_costs_are_single_source(self):
        from repro.linalg.taylor_gram import taylor_mode_cost

        assert taylor_mode_cost("gram", 100, 20, 0) == 400
        assert taylor_mode_cost("dense-psi", 100, 20, 0) == 10000
        assert taylor_mode_cost("dense-factors", 100, 20, 0) == 4000
        assert taylor_mode_cost("sparse-factors", 100, 20, 500) == pytest.approx(
            2 * 500 * SPARSE_GEMM_DISCOUNT
        )
        assert taylor_mode_cost("sparse-psi", 100, 20, 500) == float("inf")
        assert taylor_mode_cost(
            "sparse-psi", 100, 20, 500, psi_nnz=300
        ) == pytest.approx(300 * SPARSE_GEMM_DISCOUNT)
        with pytest.raises(InvalidProblemError):
            taylor_mode_cost("bogus", 1, 1, 1)


class TestWarmStartedNormEstimate:
    def test_pure_warm_start_documents_stale_direction_risk(self):
        # The raw primitive with a stale exact eigenvector locks onto it:
        # this pins the behaviour the oracle's random blending exists for.
        from repro.linalg.norms import spectral_norm_power

        psi = np.diag([10.0, 20.0, 1.0, 1.0])
        stale = np.array([1.0, 0.0, 0.0, 0.0])
        assert spectral_norm_power(psi, v0=stale) == pytest.approx(10.0)
        assert spectral_norm_power(psi, rng=0) == pytest.approx(20.0)

    def test_oracle_recovers_after_dominant_direction_rotates(self):
        # Two orthogonal rank-1 constraints; shifting all the weight from
        # one to the other rotates Psi's dominant eigenvector by 90
        # degrees.  A pure warm start would estimate ||Psi|| = 0 on the
        # second call (Psi e1 = 0) and pick a uselessly low Taylor degree;
        # the blended restart must keep the values near the fresh-oracle
        # reference.
        m = 6
        factors = [
            np.sqrt(8.0) * np.eye(m)[:, :1],
            np.sqrt(16.0) * np.eye(m)[:, 1:2],
        ]
        coll = ConstraintCollection([FactorizedPSDOperator(f) for f in factors])
        oracle = FastDotExpOracle(coll, eps=0.05, rng=1)
        oracle(np.zeros((m, m)), np.array([1.0, 0.0]))  # locks warm vector ~ e1
        second = oracle(np.zeros((m, m)), np.array([0.0, 1.0]))

        fresh_coll = ConstraintCollection([FactorizedPSDOperator(f) for f in factors])
        fresh = FastDotExpOracle(fresh_coll, eps=0.05, rng=2)(
            np.zeros((m, m)), np.array([0.0, 1.0])
        )
        np.testing.assert_allclose(second.values, fresh.values, rtol=0.2)
        assert second.trace == pytest.approx(fresh.trace, rel=0.2)
