"""Shared instance-family factories and result-equivalence assertions.

Every suite that needs "a few random factorized PSD constraints" used to
carry its own copy of the same four-line factory; they now share
:func:`factorized_family` (same generator seeding, same draw order, so all
fixed-seed regressions keep their random streams bit-for-bit).

:func:`assert_results_identical` is the batched-equivalence contract of
``repro.core.batch.solve_many``: a batched solve must reproduce its
sequential counterpart field-for-field, bitwise on arrays, with only the
wall-clock ``supervisor.elapsed`` metadata entry exempt.
"""

from __future__ import annotations

import math

import numpy as np

from repro.operators import ConstraintCollection, FactorizedPSDOperator


def factorized_family(
    seed, n=8, m=24, rank=2, scale=0.35, validate=True
) -> ConstraintCollection:
    """The canonical Gaussian factorized constraint family.

    One seeded ``default_rng``, one ``standard_normal((m, rank))`` draw per
    constraint, in constraint order — exactly the construction (and
    therefore the random stream) of the per-suite fixtures this factory
    replaced.
    """
    rng = np.random.default_rng(seed)
    return ConstraintCollection(
        [
            FactorizedPSDOperator(scale * rng.standard_normal((m, rank)))
            for _ in range(n)
        ],
        validate=validate,
    )


def _scalars_equal(a, b) -> bool:
    """Exact equality with ``nan == nan`` (both-missing counts as equal)."""
    if isinstance(a, float) and isinstance(b, float):
        if math.isnan(a) and math.isnan(b):
            return True
    return a == b


def _strip_elapsed(metadata: dict) -> dict:
    """A metadata copy without the wall-clock ``supervisor.elapsed`` entry."""
    out = dict(metadata)
    supervisor = out.get("supervisor")
    if isinstance(supervisor, dict):
        out["supervisor"] = {k: v for k, v in supervisor.items() if k != "elapsed"}
    return out


def assert_results_identical(actual, expected, label="result") -> None:
    """Assert two ``DecisionResult`` objects are identical.

    Discrete fields compare with ``==``, float fields treat ``nan == nan``
    as equal, arrays compare bitwise via ``np.array_equal``, and the
    counters and metadata dicts compare exactly (metadata minus the
    ``supervisor.elapsed`` timing).  ``label`` prefixes failure messages so
    sweep loops can name the offending instance.
    """
    for field in (
        "outcome",
        "iterations",
        "early_exit",
        "status",
        "epsilon",
        "max_iterations",
    ):
        va, vb = getattr(actual, field), getattr(expected, field)
        assert va == vb, f"{label}: {field} differs: {va!r} != {vb!r}"
    for field in ("dual_value", "primal_min_dot", "dual_lambda_max"):
        va, vb = getattr(actual, field), getattr(expected, field)
        assert _scalars_equal(va, vb), f"{label}: {field} differs: {va!r} != {vb!r}"
    assert np.array_equal(actual.dual_x, expected.dual_x), (
        f"{label}: dual_x differs (max abs delta "
        f"{np.max(np.abs(actual.dual_x - expected.dual_x))})"
    )
    ca, cb = actual.counters.as_dict(), expected.counters.as_dict()
    assert ca == cb, f"{label}: counters differ: {ca} != {cb}"
    ma, mb = _strip_elapsed(actual.metadata), _strip_elapsed(expected.metadata)
    assert ma == mb, f"{label}: metadata differs: {ma} != {mb}"
