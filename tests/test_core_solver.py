"""Tests for the full optimizer approx_psdp (Theorem 1.1 / Lemma 2.2)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidProblemError
from repro.linalg.psd import random_psd
from repro.baselines.exact import exact_packing_value
from repro.core.certificates import verify_dual, verify_primal
from repro.core.problem import NormalizedPackingSDP, PositiveSDP
from repro.core.solver import SolverOptions, approx_psdp
from repro.problems.random_instances import random_packing_sdp, random_positive_sdp


class TestApproxPSDPOnNormalizedInstances:
    def test_bracket_is_certified(self, rng):
        problem = random_packing_sdp(4, 5, rng=rng)
        result = approx_psdp(problem, epsilon=0.3)
        assert result.optimum_lower <= result.optimum_upper
        assert result.relative_gap <= 0.3 + 1e-9
        dual_cert = verify_dual(problem.constraints, result.dual_x)
        assert dual_cert.feasible
        assert dual_cert.value == pytest.approx(result.optimum_lower, rel=1e-6)
        primal_cert = verify_primal(problem.constraints, result.primal_y)
        assert primal_cert.feasible
        assert primal_cert.value == pytest.approx(result.optimum_upper, rel=1e-6)

    def test_brackets_true_optimum(self, rng):
        problem = random_packing_sdp(4, 4, rng=rng)
        result = approx_psdp(problem, epsilon=0.25)
        exact = exact_packing_value(problem).value
        assert result.optimum_lower <= exact * (1 + 1e-6)
        assert result.optimum_upper >= exact * (1 - 1e-6)

    def test_epsilon_controls_gap(self, rng):
        problem = random_packing_sdp(3, 4, rng=rng)
        loose = approx_psdp(problem, epsilon=0.5)
        tight = approx_psdp(problem, epsilon=0.15)
        assert tight.relative_gap <= 0.15 + 1e-9
        assert loose.relative_gap <= 0.5 + 1e-9
        assert tight.relative_gap <= loose.relative_gap + 1e-9

    def test_summary_and_estimate(self, rng):
        problem = random_packing_sdp(3, 4, rng=rng)
        result = approx_psdp(problem, epsilon=0.4)
        assert "OPT in [" in result.summary()
        assert result.optimum_lower <= result.optimum_estimate <= result.optimum_upper

    def test_counters_and_workdepth_aggregate(self, rng):
        problem = random_packing_sdp(3, 4, rng=rng)
        result = approx_psdp(problem, epsilon=0.4)
        assert result.decision_calls == len(result.decision_results)
        assert result.total_iterations >= sum(0 for _ in result.decision_results)
        assert result.work_depth is not None and result.work_depth.work > 0

    def test_invalid_epsilon(self, rng):
        problem = random_packing_sdp(3, 3, rng=rng)
        with pytest.raises(InvalidProblemError):
            approx_psdp(problem, epsilon=1.5)

    def test_invalid_problem_type(self):
        with pytest.raises(InvalidProblemError):
            approx_psdp([np.eye(3)], epsilon=0.2)  # must be wrapped in a problem class

    def test_single_constraint_instance(self, rng):
        mat = random_psd(4, rng=rng, scale=2.0)
        problem = NormalizedPackingSDP([mat])
        result = approx_psdp(problem, epsilon=0.3)
        # With one constraint the optimum is exactly 1 / ||A||_2 = 0.5.
        assert result.optimum_lower <= 0.5 + 1e-9 <= result.optimum_upper * (1 + 1e-9)

    def test_decision_overrides_forwarded(self, rng):
        problem = random_packing_sdp(3, 4, rng=rng)
        result = approx_psdp(problem, epsilon=0.4, collect_history=True)
        assert all(dec.history is not None for dec in result.decision_results)


class TestApproxPSDPOnGeneralInstances:
    def test_general_instance_maps_back(self, rng):
        problem = random_positive_sdp(3, 4, rng=rng)
        result = approx_psdp(problem, epsilon=0.35)
        assert result.original_dual is not None
        assert result.original_primal is not None
        # The mapped-back primal must be feasible for the original program and
        # its objective must equal the certified upper bound.
        assert problem.primal_feasible(result.original_primal, tol=1e-5)
        assert problem.objective_value(result.original_primal) == pytest.approx(
            result.optimum_upper, rel=1e-5
        )

    def test_beamforming_instance(self, rng):
        from repro.problems.beamforming import beamforming_sdp

        problem = beamforming_sdp(3, 4, rng=rng)
        result = approx_psdp(problem, epsilon=0.3)
        assert result.relative_gap <= 0.3 + 1e-9
        assert problem.primal_feasible(result.original_primal, tol=1e-5)

    def test_normalized_instances_have_no_original_solutions(self, rng):
        problem = random_packing_sdp(3, 3, rng=rng)
        result = approx_psdp(problem, epsilon=0.4)
        assert result.original_dual is None
        assert result.original_primal is None


class TestSolverOptions:
    def test_max_decision_calls_cap(self, rng):
        problem = random_packing_sdp(3, 4, rng=rng)
        options = SolverOptions(epsilon=0.3, max_decision_calls=50)
        result = approx_psdp(problem, options=options)
        assert result.decision_calls <= 50

    def test_decision_epsilon_override(self, rng):
        problem = random_packing_sdp(3, 4, rng=rng)
        options = SolverOptions(epsilon=0.3, decision_epsilon=0.15)
        result = approx_psdp(problem, options=options)
        assert result.metadata["decision_epsilon"] == pytest.approx(0.15)
        assert all(dec.epsilon == pytest.approx(0.15) for dec in result.decision_results)
