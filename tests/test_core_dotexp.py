"""Tests for the exponential-dot-product oracles (Theorem 4.1)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import InvalidProblemError
from repro.linalg.expm import expm_eigh, expm_normalized
from repro.linalg.psd import random_psd
from repro.operators.collection import ConstraintCollection
from repro.core.dotexp import (
    ExactDotExpOracle,
    FastDotExpOracle,
    big_dot_exp,
    make_oracle,
)


@pytest.fixture
def phi(rng):
    return random_psd(6, rng=rng, scale=2.0)


@pytest.fixture
def factors(rng):
    return [rng.standard_normal((6, 2)) for _ in range(4)]


class TestBigDotExp:
    def test_matches_exact_without_sketch(self, phi, factors):
        exact = [float(np.sum(expm_eigh(phi) * (q @ q.T))) for q in factors]
        approx = big_dot_exp(phi, factors, kappa=2.0, eps=0.05, use_sketch=False)
        np.testing.assert_allclose(approx, exact, rtol=0.06)

    def test_never_overestimates_without_sketch(self, phi, factors):
        """Lemma 4.2's polynomial is a lower bound, so the estimates are one-sided."""
        exact = np.array([float(np.sum(expm_eigh(phi) * (q @ q.T))) for q in factors])
        approx = big_dot_exp(phi, factors, kappa=2.0, eps=0.1, use_sketch=False)
        assert np.all(approx <= exact + 1e-8)

    def test_with_sketch_close(self, phi, factors, rng):
        exact = [float(np.sum(expm_eigh(phi) * (q @ q.T))) for q in factors]
        approx = big_dot_exp(phi, factors, kappa=2.0, eps=0.1, rng=rng)
        np.testing.assert_allclose(approx, exact, rtol=0.5)

    def test_kappa_estimated_when_missing(self, phi, factors, rng):
        approx = big_dot_exp(phi, factors, eps=0.1, rng=rng, use_sketch=False)
        exact = [float(np.sum(expm_eigh(phi) * (q @ q.T))) for q in factors]
        np.testing.assert_allclose(approx, exact, rtol=0.15)

    def test_sparse_phi_and_factors(self, rng):
        dense_phi = random_psd(8, rank=3, rng=rng, scale=1.5)
        phi_sparse = sp.csr_matrix(dense_phi)
        factor = sp.csr_matrix(rng.standard_normal((8, 2)))
        exact = float(np.sum(expm_eigh(dense_phi) * (factor.toarray() @ factor.toarray().T)))
        approx = big_dot_exp(phi_sparse, [factor], kappa=1.5, eps=0.05, use_sketch=False)
        assert approx[0] == pytest.approx(exact, rel=0.06)

    def test_counters_updated(self, phi, factors):
        from repro.instrumentation.counters import OracleCounters

        counters = OracleCounters()
        big_dot_exp(phi, factors, kappa=2.0, eps=0.1, counters=counters, use_sketch=False)
        assert counters.calls == 1
        assert counters.matvecs > 0
        assert counters.factor_passes == len(factors)

    def test_invalid_eps(self, phi, factors):
        with pytest.raises(InvalidProblemError):
            big_dot_exp(phi, factors, eps=0.0)

    def test_empty_factors(self, phi):
        with pytest.raises(InvalidProblemError):
            big_dot_exp(phi, [], eps=0.1)

    def test_non_square_phi(self, factors):
        with pytest.raises(InvalidProblemError):
            big_dot_exp(np.ones((3, 4)), factors, eps=0.1)


class TestExactOracle:
    def test_values_match_definition(self, small_collection, rng):
        oracle = ExactDotExpOracle(small_collection)
        psi = random_psd(5, rng=rng, scale=1.5)
        output = oracle(psi, np.ones(len(small_collection)))
        density = expm_normalized(psi)
        expected = small_collection.dots(density)
        np.testing.assert_allclose(output.values, expected, atol=1e-10)
        assert output.trace == 1.0
        assert oracle.counters.eigendecompositions == 1

    def test_work_positive(self, small_collection, rng):
        oracle = ExactDotExpOracle(small_collection)
        output = oracle(random_psd(5, rng=rng), np.ones(4))
        assert output.work > 0


class TestFastOracle:
    def test_close_to_exact_oracle(self, small_collection, rng):
        # The fast oracle rebuilds Psi from the dual iterate x through the
        # constraint factors, so psi and x must describe the same state.
        x = rng.uniform(0.05, 0.3, size=4)
        psi = small_collection.weighted_sum(x)
        exact = ExactDotExpOracle(small_collection)(psi, x).values
        fast = FastDotExpOracle(small_collection, eps=0.05, rng=rng)(psi, x).values
        # Ratios of one-sided approximations: allow a generous relative band.
        np.testing.assert_allclose(fast, exact, rtol=0.25)

    def test_kappa_bound_respected(self, small_collection, rng):
        x = rng.uniform(0.05, 0.2, size=4)
        psi = small_collection.weighted_sum(x)
        oracle = FastDotExpOracle(small_collection, eps=0.1, kappa_bound=5.0, rng=rng)
        output = oracle(psi, x)
        assert np.all(np.isfinite(output.values))
        assert oracle.counters.calls == 1

    def test_invalid_eps(self, small_collection):
        with pytest.raises(InvalidProblemError):
            FastDotExpOracle(small_collection, eps=1.5)


class TestMakeOracle:
    def test_exact_kind(self, small_collection):
        assert isinstance(make_oracle(small_collection, "exact"), ExactDotExpOracle)

    def test_fast_kind(self, small_collection):
        assert isinstance(make_oracle(small_collection, "fast"), FastDotExpOracle)

    def test_unknown_kind(self, small_collection):
        with pytest.raises(InvalidProblemError):
            make_oracle(small_collection, "quantum")
