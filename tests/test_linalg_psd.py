"""Tests for repro.linalg.psd (PSD checks, Loewner order, random generation)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import NotPositiveSemidefiniteError, InvalidProblemError
from repro.linalg.psd import (
    check_psd,
    is_psd,
    loewner_leq,
    max_eigenvalue,
    min_eigenvalue,
    nearest_psd,
    project_to_psd,
    random_psd,
)


class TestIsPsd:
    def test_identity_is_psd(self):
        assert is_psd(np.eye(4))

    def test_negative_definite_is_not_psd(self):
        assert not is_psd(-np.eye(3))

    def test_indefinite_is_not_psd(self):
        assert not is_psd(np.diag([1.0, -1.0]))

    def test_zero_matrix_is_psd(self):
        assert is_psd(np.zeros((3, 3)))

    def test_rank_deficient_psd(self):
        v = np.array([1.0, 2.0, 3.0])
        assert is_psd(np.outer(v, v))

    def test_rejects_asymmetric(self):
        with pytest.raises(InvalidProblemError):
            is_psd(np.array([[1.0, 2.0], [0.0, 1.0]]))

    def test_tolerance_scale_invariance(self):
        v = np.array([1.0, -1.0])
        mat = 1e6 * np.outer(v, v)
        # A tiny negative perturbation relative to the scale should pass.
        mat[0, 0] -= 1e-4
        assert is_psd(mat)


class TestCheckPsd:
    def test_returns_symmetrized(self):
        mat = check_psd(np.eye(3))
        assert np.array_equal(mat, mat.T)

    def test_raises_with_eigenvalue(self):
        with pytest.raises(NotPositiveSemidefiniteError) as err:
            check_psd(np.diag([1.0, -2.0]))
        assert err.value.min_eigenvalue == pytest.approx(-2.0)


class TestEigenvalueHelpers:
    def test_min_max_eigenvalue_diag(self):
        mat = np.diag([0.5, 3.0, 1.0])
        assert min_eigenvalue(mat) == pytest.approx(0.5)
        assert max_eigenvalue(mat) == pytest.approx(3.0)


class TestLoewnerOrder:
    def test_scaling_orders(self):
        a = np.eye(3)
        assert loewner_leq(a, 2 * a)
        assert not loewner_leq(2 * a, a)

    def test_reflexive(self, small_psd):
        assert loewner_leq(small_psd, small_psd)

    def test_shape_mismatch(self):
        with pytest.raises(ValueError):
            loewner_leq(np.eye(2), np.eye(3))


class TestProjection:
    def test_project_clips_negative_eigenvalues(self):
        mat = np.diag([2.0, -1.0])
        proj = project_to_psd(mat)
        np.testing.assert_allclose(proj, np.diag([2.0, 0.0]), atol=1e-12)

    def test_projection_idempotent(self, small_psd):
        np.testing.assert_allclose(project_to_psd(small_psd), small_psd, atol=1e-10)

    def test_nearest_psd_symmetrizes_first(self):
        mat = np.array([[1.0, 4.0], [0.0, 1.0]])
        out = nearest_psd(mat)
        assert is_psd(out)

    def test_nearest_psd_rejects_rectangular(self):
        with pytest.raises(ValueError):
            nearest_psd(np.ones((2, 3)))


class TestRandomPsd:
    def test_is_psd_and_scaled(self, rng):
        mat = random_psd(6, rng=rng, scale=2.5)
        assert is_psd(mat)
        assert max_eigenvalue(mat) == pytest.approx(2.5, rel=1e-8)

    def test_rank_control(self, rng):
        mat = random_psd(8, rank=2, rng=rng)
        eigvals = np.linalg.eigvalsh(mat)
        assert np.sum(eigvals > 1e-10) == 2

    def test_explicit_spectrum(self, rng):
        spectrum = np.array([4.0, 1.0, 0.0, 0.0])
        mat = random_psd(4, spectrum=spectrum, scale=4.0, rng=rng)
        eigvals = np.sort(np.linalg.eigvalsh(mat))[::-1]
        np.testing.assert_allclose(eigvals, np.sort(spectrum)[::-1], atol=1e-8)

    def test_invalid_dim(self):
        with pytest.raises(ValueError):
            random_psd(0)

    def test_invalid_rank(self):
        with pytest.raises(ValueError):
            random_psd(3, rank=5)

    def test_negative_spectrum_rejected(self):
        with pytest.raises(ValueError):
            random_psd(2, spectrum=np.array([1.0, -1.0]))

    def test_reproducible_with_seed(self):
        a = random_psd(5, rng=123)
        b = random_psd(5, rng=123)
        np.testing.assert_array_equal(a, b)


@settings(max_examples=25, deadline=None)
@given(dim=st.integers(min_value=1, max_value=8), seed=st.integers(min_value=0, max_value=10_000))
def test_random_psd_always_psd(dim, seed):
    """Property: random_psd always produces PSD matrices of the right shape."""
    mat = random_psd(dim, rng=seed)
    assert mat.shape == (dim, dim)
    assert is_psd(mat)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(min_value=0, max_value=10_000))
def test_projection_is_closest_in_tested_directions(seed):
    """Property: the PSD projection never moves further than clipping all eigenvalues."""
    rng = np.random.default_rng(seed)
    base = rng.standard_normal((4, 4))
    sym = 0.5 * (base + base.T)
    proj = project_to_psd(sym)
    assert is_psd(proj)
    # The projection error equals the norm of the clipped negative part.
    eigvals = np.linalg.eigvalsh(sym)
    expected = np.sqrt(np.sum(np.clip(-eigvals, 0, None) ** 2))
    assert np.linalg.norm(proj - sym) == pytest.approx(expected, abs=1e-8)
