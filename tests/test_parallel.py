"""Tests for the work-depth cost model, backends, primitives, and scheduler."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import BackendError
from repro.parallel import (
    BrentSchedule,
    ProcessBackend,
    SerialBackend,
    ThreadBackend,
    WorkDepthTracker,
    get_backend,
    parallel_filter,
    parallel_map,
    parallel_reduce,
    parallel_scan,
    simulate_schedule,
)
from repro.parallel.scheduler import speedup_curve


class TestWorkDepthTracker:
    def test_sequential_charges_add(self):
        tracker = WorkDepthTracker()
        tracker.charge(10, 2)
        tracker.charge(5, 1)
        assert tracker.work == 15
        assert tracker.depth == 3

    def test_depth_defaults_to_work(self):
        tracker = WorkDepthTracker()
        tracker.charge(7)
        assert tracker.depth == 7

    def test_parallel_region_max_depth(self):
        tracker = WorkDepthTracker()
        with tracker.parallel():
            tracker.charge(10, 4)
            tracker.charge(20, 6)
        assert tracker.work == 30
        assert tracker.depth == 6

    def test_nested_parallel_regions(self):
        tracker = WorkDepthTracker()
        with tracker.parallel():
            tracker.charge(5, 5)
            with tracker.parallel():
                tracker.charge(3, 3)
                tracker.charge(4, 4)
        assert tracker.work == 12
        assert tracker.depth == 5  # max(5, max(3, 4))

    def test_labels_accumulate(self):
        tracker = WorkDepthTracker()
        tracker.charge(3, 1, label="oracle")
        tracker.charge(4, 1, label="oracle")
        assert tracker.report().by_label["oracle"] == 7

    def test_negative_rejected(self):
        tracker = WorkDepthTracker()
        with pytest.raises(ValueError):
            tracker.charge(-1)
        with pytest.raises(ValueError):
            tracker.charge(1, -2)

    def test_reset_and_merge(self):
        tracker = WorkDepthTracker()
        tracker.charge(5, 5)
        other = WorkDepthTracker()
        other.charge(3, 2)
        tracker.merge(other)
        assert tracker.work == 8
        tracker.reset()
        assert tracker.work == 0 and tracker.depth == 0

    def test_report_parallelism(self):
        tracker = WorkDepthTracker()
        tracker.charge(100, 5)
        assert tracker.report().parallelism == pytest.approx(20.0)


class TestBackends:
    @pytest.mark.parametrize("backend_name", ["serial", "thread"])
    def test_map_preserves_order(self, backend_name):
        backend = get_backend(backend_name)
        try:
            result = backend.map(lambda v: v * v, range(10))
            assert result == [v * v for v in range(10)]
        finally:
            backend.close()

    def test_process_backend_with_picklable_function(self):
        backend = ProcessBackend(max_workers=1)
        try:
            result = backend.map(abs, [-1, -2, 3])
            assert result == [1, 2, 3]
        finally:
            backend.close()

    def test_map_charges_tracker(self):
        tracker = WorkDepthTracker()
        backend = SerialBackend(tracker=tracker)
        backend.map(lambda v: v, range(8), work_per_item=2.0, label="unit")
        assert tracker.work == 16
        assert tracker.depth == 2

    def test_per_item_work_list(self):
        tracker = WorkDepthTracker()
        backend = SerialBackend(tracker=tracker)
        backend.map(lambda v: v, [1, 2, 3], work_per_item=[1.0, 5.0, 2.0])
        assert tracker.work == 8
        assert tracker.depth == 5

    def test_per_item_work_length_mismatch(self):
        backend = SerialBackend(tracker=WorkDepthTracker())
        with pytest.raises(BackendError):
            backend.map(lambda v: v, [1, 2], work_per_item=[1.0])

    def test_empty_map(self):
        assert SerialBackend().map(lambda v: v, []) == []

    def test_unknown_backend(self):
        with pytest.raises(BackendError):
            get_backend("gpu")

    def test_invalid_worker_count(self):
        with pytest.raises(BackendError):
            ThreadBackend(max_workers=0)

    def test_context_manager(self):
        with ThreadBackend(max_workers=2) as backend:
            assert backend.map(len, ["ab", "c"]) == [2, 1]


class TestPrimitives:
    def test_parallel_map_default_backend(self):
        assert parallel_map(lambda v: v + 1, [1, 2, 3]) == [2, 3, 4]

    def test_parallel_reduce_matches_sum(self):
        values = np.linspace(0, 1, 101)
        assert parallel_reduce(values) == pytest.approx(float(values.sum()))

    def test_reduce_charges_log_depth(self):
        tracker = WorkDepthTracker()
        backend = SerialBackend(tracker=tracker)
        parallel_reduce(range(64), backend=backend)
        assert tracker.work == 64
        assert tracker.depth == pytest.approx(6.0)

    def test_scan_inclusive_and_exclusive(self):
        inclusive = parallel_scan([1.0, 2.0, 3.0])
        np.testing.assert_allclose(inclusive, [1.0, 3.0, 6.0])
        exclusive = parallel_scan([1.0, 2.0, 3.0], inclusive=False)
        np.testing.assert_allclose(exclusive, [0.0, 1.0, 3.0])

    def test_filter_matches_builtin(self):
        items = list(range(20))
        assert parallel_filter(lambda v: v % 3 == 0, items) == [v for v in items if v % 3 == 0]

    def test_filter_charges_pack_step(self):
        tracker = WorkDepthTracker()
        backend = SerialBackend(tracker=tracker)
        parallel_filter(lambda v: True, range(16), backend=backend)
        assert tracker.work >= 16


class TestScheduler:
    def test_brent_bounds(self):
        tracker = WorkDepthTracker()
        tracker.charge(1000, 10)
        schedule = simulate_schedule(tracker, processors=10)
        assert schedule.time_upper == pytest.approx(110.0)
        assert schedule.time_lower == pytest.approx(100.0)
        assert schedule.speedup_lower <= schedule.speedup_upper

    def test_single_processor_no_speedup(self):
        tracker = WorkDepthTracker()
        tracker.charge(50, 5)
        schedule = simulate_schedule(tracker, processors=1)
        assert schedule.speedup_upper <= 1.0 + 1e-9

    def test_invalid_processors(self):
        tracker = WorkDepthTracker()
        tracker.charge(1, 1)
        with pytest.raises(ValueError):
            simulate_schedule(tracker, processors=0)

    def test_speedup_curve_monotone(self):
        tracker = WorkDepthTracker()
        tracker.charge(10_000, 10)
        curve = speedup_curve(tracker, [1, 2, 4, 8, 16])
        speedups = [point.speedup_lower for point in curve]
        assert all(b >= a - 1e-9 for a, b in zip(speedups, speedups[1:]))

    def test_efficiency_bounded(self):
        tracker = WorkDepthTracker()
        tracker.charge(100, 50)
        schedule = simulate_schedule(tracker, processors=4)
        assert 0 < schedule.efficiency <= 1.0


@settings(max_examples=20, deadline=None)
@given(
    works=st.lists(st.floats(min_value=0.0, max_value=100.0), min_size=1, max_size=10),
    depths=st.lists(st.floats(min_value=0.0, max_value=10.0), min_size=1, max_size=10),
)
def test_parallel_region_invariants(works, depths):
    """Property: work adds and depth is the max across any parallel region."""
    n = min(len(works), len(depths))
    works, depths = works[:n], depths[:n]
    depths = [min(w, d) for w, d in zip(works, depths)]
    tracker = WorkDepthTracker()
    with tracker.parallel():
        for w, d in zip(works, depths):
            tracker.charge(w, d)
    assert tracker.work == pytest.approx(sum(works))
    assert tracker.depth == pytest.approx(max(depths) if depths else 0.0)
    assert tracker.depth <= tracker.work + 1e-9
