"""Cross-backend differential conformance suite (E20).

Every test runs once per *installed* array backend through the ``backend``
conftest fixture — NumPy always, torch/CuPy automatically when present.
The contract under test (see ``docs/BACKENDS.md``):

* the NumPy backend is a literal pass-through, so its results are
  **bit-identical** to the pre-backend reference paths;
* non-NumPy float64 backends match NumPy to ``ATOL`` on every kernel
  primitive, and produce *identical* certified decisions, iteration
  counts, and work–depth charges on fixed seeds (charges are shape-derived
  and cannot depend on the backend at all).
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import NUMPY, available_backends, get_array_backend
from repro.backend.numpy_backend import batched_segment_sums, segment_sums
from repro.core.decision import DecisionOptions, decision_psdp
from repro.exceptions import BackendError, InvalidProblemError
from repro.linalg.psd import random_psd
from repro.linalg.taylor_blocked import blocked_taylor_apply
from repro.linalg.taylor_gram import GramTaylorKernel, gram_taylor_apply
from repro.linalg.trace_estimation import gram_exp_trace
from repro.operators.collection import ConstraintCollection
from repro.operators.packed import PackedGramFactors

#: Float64 agreement across backends (same BLAS-level algorithms, possibly
#: different reduction orders).
ATOL = 1e-12


def _tolerances(backend):
    """(rtol, atol) for comparisons against the NumPy reference."""
    if backend.is_numpy:
        return 0.0, 0.0
    return ATOL, ATOL


def _assert_matches(backend, got, want):
    got = np.asarray(got, dtype=np.float64)
    want = np.asarray(want, dtype=np.float64)
    if backend.is_numpy:
        np.testing.assert_array_equal(got, want)
    else:
        np.testing.assert_allclose(got, want, rtol=ATOL, atol=ATOL)


def _collection(seed: int = 7, m: int = 10, n: int = 5) -> ConstraintCollection:
    rng = np.random.default_rng(seed)
    mats = [random_psd(m, scale=0.4 + 0.3 * i, rng=rng) for i in range(n)]
    return ConstraintCollection(mats)


# --------------------------------------------------------------------- registry
def test_available_backends_starts_with_numpy():
    names = available_backends()
    assert names[0] == "numpy"
    assert len(set(names)) == len(names)


def test_get_array_backend_resolves_specs(backend):
    assert get_array_backend(backend.name) is get_array_backend(backend.name)
    assert get_array_backend(backend) is backend


def test_get_array_backend_rejects_unknown_names():
    with pytest.raises(BackendError):
        get_array_backend("tensorflow")


def test_missing_optional_backend_raises_backend_error():
    installed = set(available_backends())
    for name in ("torch", "cupy"):
        if name not in installed:
            with pytest.raises(BackendError):
                get_array_backend(name)


# ------------------------------------------------------------------- primitives
def test_roundtrip_and_introspection(backend):
    x = np.arange(12, dtype=np.float64).reshape(3, 4)
    dev = backend.asarray(x)
    assert backend.dtype_of(dev) == np.dtype(np.float64)
    assert isinstance(backend.device_of(dev), str)
    np.testing.assert_array_equal(backend.to_numpy(dev), x)
    assert backend.isfinite_all(dev)
    bad = x.copy()
    bad[0, 0] = np.nan
    assert not backend.isfinite_all(backend.asarray(bad))


def test_copy_is_independent(backend):
    x = np.ones((2, 2))
    dev = backend.asarray(x)
    dup = backend.copy(dev)
    dup += 1.0
    np.testing.assert_array_equal(backend.to_numpy(dev), x)


def test_matmul_einsum_eigh_norm(backend):
    rng = np.random.default_rng(3)
    a = rng.standard_normal((6, 4))
    b = rng.standard_normal((4, 5))
    _assert_matches(backend, backend.to_numpy(
        backend.matmul(backend.asarray(a), backend.asarray(b))), a @ b)
    _assert_matches(backend, backend.to_numpy(
        backend.einsum("ij,ij->j", backend.asarray(a), backend.asarray(a))),
        np.einsum("ij,ij->j", a, a))
    assert backend.norm(backend.asarray(a)) == pytest.approx(
        float(np.linalg.norm(a)), abs=ATOL)

    sym = a @ a.T
    _assert_matches(backend, backend.to_numpy(
        backend.eigvalsh(backend.asarray(sym))), np.linalg.eigvalsh(sym))
    w, v = backend.eigh(backend.asarray(sym))
    w, v = backend.to_numpy(w), backend.to_numpy(v)
    _assert_matches(backend, w, np.linalg.eigh(sym)[0])
    # Eigenvectors are sign/rotation ambiguous: check the reconstruction.
    np.testing.assert_allclose((v * w) @ v.T, sym, atol=1e-10)


def test_construction_primitives(backend):
    eye = backend.to_numpy(backend.eye(4))
    np.testing.assert_array_equal(eye, np.eye(4))
    zeros = backend.to_numpy(backend.zeros((2, 3)))
    np.testing.assert_array_equal(zeros, np.zeros((2, 3)))
    assert backend.to_numpy(backend.empty((2, 2))).shape == (2, 2)
    assert backend.dtype_of(backend.zeros(3, dtype=np.float32)) == np.float32


def test_segment_sums_conformance(backend):
    values = np.array([1.0, 2.0, 3.0, -1.5, 0.25])
    offsets = np.array([0, 2, 2, 5])  # includes an empty segment
    want = segment_sums(values, offsets)
    got = backend.to_numpy(backend.segment_sums(backend.asarray(values), offsets))
    _assert_matches(backend, got, want)


def test_batched_segment_sums_conformance(backend):
    rng = np.random.default_rng(11)
    values = rng.standard_normal((3, 7))
    offsets = np.array([0, 3, 3, 6, 7])
    want = batched_segment_sums(values, offsets)
    got = backend.to_numpy(
        backend.batched_segment_sums(backend.asarray(values), offsets)
    )
    _assert_matches(backend, got, want)


def test_column_indexing(backend):
    rng = np.random.default_rng(5)
    x = rng.standard_normal((4, 6))
    idx = np.array([4, 1, 3])
    dev = backend.asarray(x.copy())
    _assert_matches(backend, backend.to_numpy(
        backend.take_columns(dev, idx)), x[:, idx])
    backend.put_columns(dev, idx, backend.asarray(np.zeros((4, 3))))
    host = backend.to_numpy(dev)
    assert np.all(host[:, idx] == 0.0)
    np.testing.assert_array_equal(host[:, [0, 2, 5]], x[:, [0, 2, 5]])
    reps = np.array([2, 0, 3])
    _assert_matches(backend, backend.to_numpy(
        backend.repeat(backend.asarray(np.array([1.0, 2.0, 3.0])), reps)),
        np.repeat(np.array([1.0, 2.0, 3.0]), reps))


# ---------------------------------------------------------------- packed kernels
def test_packed_kernels_conformance(backend):
    collection = _collection()
    ref = PackedGramFactors.from_collection(collection)
    view = PackedGramFactors.from_collection(collection, backend=backend)
    assert view.backend is backend
    rng = np.random.default_rng(2)
    weights = rng.uniform(0.1, 1.0, size=len(collection))

    _assert_matches(backend, view.weighted_sum(weights), ref.weighted_sum(weights))
    _assert_matches(backend, view.traces(), ref.traces())
    _assert_matches(backend, view.column_sq_norms(), ref.column_sq_norms())

    sym = random_psd(collection.dim, rng=rng)
    _assert_matches(backend, view.dots(sym), ref.dots(sym))

    block = rng.standard_normal((collection.dim, 3))
    _assert_matches(
        backend, view.matvec_fn(weights)(block), ref.matvec_fn(weights)(block)
    )

    transform = rng.standard_normal((collection.dim, collection.dim))
    _assert_matches(
        backend,
        view.estimates_from_transform(transform),
        ref.estimates_from_transform(transform),
    )


def test_packed_sparse_stack_densifies_on_non_numpy(backend):
    import scipy.sparse as sp

    rng = np.random.default_rng(9)
    dense_factor = rng.standard_normal((8, 2)) * (rng.random((8, 2)) < 0.3)
    collection = ConstraintCollection([dense_factor @ dense_factor.T])
    sparse_q = sp.csr_matrix(collection.packed().matrix)
    view = PackedGramFactors([sparse_q], backend=backend)
    if backend.is_numpy:
        assert view.is_sparse
    else:
        assert not view.is_sparse  # forced densification


# ----------------------------------------------------------------- taylor kernels
def test_blocked_taylor_apply_conformance(backend):
    rng = np.random.default_rng(4)
    q = rng.standard_normal((9, 5))
    col_w = rng.uniform(0.0, 1.0, size=5)
    block = rng.standard_normal((9, 4))
    want = blocked_taylor_apply(q, col_w, block, degree=6, scale=0.5)
    got = blocked_taylor_apply(q, col_w, block, degree=6, scale=0.5, backend=backend)
    _assert_matches(backend, got, want)


def test_gram_taylor_apply_conformance(backend):
    rng = np.random.default_rng(6)
    q = rng.standard_normal((12, 4))
    col_w = rng.uniform(0.0, 1.0, size=4)
    block = rng.standard_normal((12, 5))
    want = gram_taylor_apply(q, col_w, block, degree=7, scale=0.5)
    got = gram_taylor_apply(q, col_w, block, degree=7, scale=0.5, backend=backend)
    _assert_matches(backend, got, want)


def test_gram_kernel_matvec_conformance(backend):
    rng = np.random.default_rng(8)
    q = rng.standard_normal((10, 3))
    col_w = rng.uniform(0.1, 1.0, size=3)
    ref = GramTaylorKernel(q, col_w)
    ker = GramTaylorKernel(q, col_w, backend=backend)
    vec = rng.standard_normal(10)
    block = rng.standard_normal((10, 2))
    _assert_matches(backend, ker.matvec(vec), ref.matvec(vec))
    _assert_matches(backend, ker.matvec(block), ref.matvec(block))


def test_sparse_taylor_kernel_rejects_non_numpy(backend):
    import scipy.sparse as sp

    if backend.is_numpy:
        pytest.skip("sparse kernels are supported on the NumPy backend")
    q = sp.random(8, 3, density=0.5, random_state=1, format="csr")
    with pytest.raises(InvalidProblemError):
        GramTaylorKernel(q, np.ones(3), backend=backend)


# ------------------------------------------------------------- trace estimation
def test_gram_exp_trace_conformance(backend):
    rng = np.random.default_rng(10)
    q = rng.standard_normal((14, 4))
    col_w = rng.uniform(0.0, 1.0, size=4)
    gram = q.T @ q
    want = gram_exp_trace(gram, col_w, 14, degree=8, scale=0.5)
    got = gram_exp_trace(gram, col_w, 14, degree=8, scale=0.5, backend=backend)
    if backend.is_numpy:
        assert got == want
    else:
        assert got == pytest.approx(want, rel=ATOL)


# -------------------------------------------------------- decision equivalence
def test_fixed_seed_decision_equivalence(backend):
    """The paper-level contract: backends change arithmetic, not decisions.

    Fixed-seed fast-oracle solves must certify the same outcome with the
    same iteration count and *identical* work–depth charges (charges are
    derived from shapes, never from array values, so any drift here is a
    backend leaking into the cost model).
    """
    collection = _collection(seed=20, m=8, n=4)
    kwargs = dict(epsilon=0.3, oracle="fast", rng=77)
    ref = decision_psdp(collection, **kwargs, array_backend="numpy")
    res = decision_psdp(collection, **kwargs, array_backend=backend)

    assert res.outcome == ref.outcome
    assert res.iterations == ref.iterations
    assert res.early_exit == ref.early_exit
    assert res.work_depth.work == ref.work_depth.work
    assert res.work_depth.depth == ref.work_depth.depth
    assert res.work_depth.events == ref.work_depth.events
    if backend.is_numpy:
        np.testing.assert_array_equal(res.dual_x, ref.dual_x)
        assert res.dual_value == ref.dual_value
    else:
        np.testing.assert_allclose(res.dual_x, ref.dual_x, rtol=1e-9, atol=1e-12)
        assert res.dual_value == pytest.approx(ref.dual_value, rel=1e-9)


def test_decision_options_backend_string_normalises():
    opts = DecisionOptions(backend="numpy")
    assert opts.backend is None
    assert opts.array_backend == "numpy"
    assert NUMPY.is_numpy


# --------------------------------------------------------------- dtype discipline
def test_blocked_taylor_float32_stack_never_upcasts(backend):
    """A float32 stack stays float32 through the blocked Taylor path.

    Guards the latent upcasts the backend refactor removed: the ping-pong
    buffers, the densified ``Psi``, and the weight scaling used to default
    to float64 regardless of the stack dtype.
    """
    from repro.linalg.taylor_blocked import BlockedTaylorKernel, densified_psi

    rng = np.random.default_rng(13)
    q = rng.standard_normal((8, 3)).astype(np.float32)
    col_w = rng.uniform(0.1, 1.0, size=3).astype(np.float32)
    block = rng.standard_normal((8, 4)).astype(np.float32)

    assert densified_psi(q, col_w).dtype == np.float32
    for kernel in (
        BlockedTaylorKernel(q, col_w, backend=backend),
        BlockedTaylorKernel(q, col_w, densify=True, backend=backend),
        BlockedTaylorKernel.from_scaled_factors(q, q * col_w, backend=backend),
    ):
        assert kernel.dtype == np.float32
        out = kernel.apply(block, degree=5, scale=0.5)
        assert out.dtype == np.float32
        assert kernel.matvec(block).dtype == np.float32

    gram_kernel = GramTaylorKernel(q, col_w, backend=backend)
    assert gram_kernel.dtype == np.float32
    assert gram_kernel.apply(block, degree=5, scale=0.5).dtype == np.float32


def test_blocked_taylor_float64_default_dtype_unchanged():
    """Non-float32 inputs (including ints) still compute in float64."""
    from repro.linalg.taylor_blocked import BlockedTaylorKernel

    q = np.arange(12, dtype=np.int64).reshape(4, 3)
    kernel = BlockedTaylorKernel(q, np.ones(3))
    assert kernel.dtype == np.float64
    out = kernel.apply(np.eye(4), degree=4, scale=0.5)
    assert out.dtype == np.float64
