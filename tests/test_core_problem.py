"""Tests for repro.core.problem (PositiveSDP / NormalizedPackingSDP)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidProblemError
from repro.linalg.psd import random_psd
from repro.core.problem import NormalizedPackingSDP, PositiveSDP


class TestPositiveSDP:
    def _problem(self, rng, n=3, m=4):
        constraints = [random_psd(m, rng=rng) for _ in range(n)]
        objective = random_psd(m, rng=rng) + 0.5 * np.eye(m)
        rhs = np.abs(rng.uniform(0.5, 1.5, size=n))
        return PositiveSDP(objective, constraints, rhs, name="test")

    def test_basic_construction(self, rng):
        problem = self._problem(rng)
        assert problem.dim == 4
        assert problem.num_constraints == 3
        assert problem.name == "test"

    def test_dimension_mismatch(self, rng):
        with pytest.raises(InvalidProblemError):
            PositiveSDP(np.eye(3), [random_psd(4, rng=rng)], [1.0])

    def test_rhs_length_mismatch(self, rng):
        with pytest.raises(InvalidProblemError):
            PositiveSDP(np.eye(4), [random_psd(4, rng=rng)], [1.0, 2.0])

    def test_negative_rhs_rejected(self, rng):
        with pytest.raises(InvalidProblemError):
            PositiveSDP(np.eye(4), [random_psd(4, rng=rng)], [-1.0])

    def test_non_psd_objective_rejected(self, rng):
        with pytest.raises(InvalidProblemError):
            PositiveSDP(np.diag([1.0, -1.0, 1.0, 1.0]), [random_psd(4, rng=rng)], [1.0])

    def test_objective_and_constraint_values(self, rng):
        problem = self._problem(rng)
        y = random_psd(4, rng=rng)
        assert problem.objective_value(y) == pytest.approx(
            float(np.sum(problem.objective.to_dense() * y))
        )
        vals = problem.constraint_values(y)
        assert vals.shape == (3,)

    def test_primal_feasibility_check(self, rng):
        problem = self._problem(rng)
        # A large multiple of the identity satisfies every covering constraint.
        traces = problem.constraints.traces()
        big = np.eye(4) * float(problem.rhs.max() / min(traces) * problem.dim * 10)
        assert problem.primal_feasible(big)
        assert not problem.primal_feasible(np.zeros((4, 4)))


class TestNormalizedPackingSDP:
    def test_value_bounds_order(self, small_problem):
        lower, upper = small_problem.value_bounds()
        assert 0 < lower <= upper

    def test_value_bounds_certifiable(self, small_problem):
        """The lower bound is realised by a feasible single-coordinate vector."""
        lower, _ = small_problem.value_bounds()
        norms = small_problem.constraints.spectral_norms()
        x = np.zeros(len(small_problem.constraints))
        best = int(np.argmax(1.0 / norms))
        x[best] = 1.0 / norms[best]
        assert small_problem.dual_feasible(x)
        assert small_problem.dual_value(x) == pytest.approx(lower)

    def test_dual_feasibility(self, small_problem):
        n = small_problem.num_constraints
        assert small_problem.dual_feasible(np.zeros(n))
        assert not small_problem.dual_feasible(np.full(n, 1e6))
        assert not small_problem.dual_feasible(-np.ones(n))

    def test_primal_feasibility(self, small_problem):
        traces = small_problem.constraints.traces()
        y = np.eye(small_problem.dim) * (2.0 / float(traces.min()) * small_problem.dim)
        assert small_problem.primal_feasible(y)
        assert not small_problem.primal_feasible(np.zeros((small_problem.dim, small_problem.dim)))

    def test_scaled_optimum_scales_inversely(self, small_problem):
        """Scaling constraints by theta scales the packing optimum by 1/theta."""
        n = small_problem.num_constraints
        x = np.zeros(n)
        norms = small_problem.constraints.spectral_norms()
        x[0] = 1.0 / norms[0]
        scaled = small_problem.scaled(2.0)
        assert scaled.dual_feasible(x / 2.0)
        assert not scaled.dual_feasible(x * 1.5)

    def test_scaled_invalid_theta(self, small_problem):
        with pytest.raises(InvalidProblemError):
            small_problem.scaled(0.0)

    def test_zero_constraint_rejected_in_bounds(self):
        problem = NormalizedPackingSDP([np.zeros((3, 3)), np.eye(3)], validate=False)
        with pytest.raises(InvalidProblemError):
            problem.value_bounds()

    def test_primal_value_is_trace(self, small_problem):
        y = np.diag([1.0, 2.0, 3.0, 4.0, 5.0])
        assert small_problem.primal_value(y) == pytest.approx(15.0)
