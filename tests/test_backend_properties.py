"""Hypothesis property tests for the backend kernel invariants (tier-1).

Exercised on the NumPy backend only — the properties pin the *reference*
semantics the conformance suite then compares other backends against:

* segment sums respect arbitrary (possibly empty / zero-rank) offset
  layouts and always total to the grand sum;
* the packed round-trip ``build -> weighted_sum`` equals the naive
  ``sum_i w_i A_i``;
* the truncated-exponential Gram recurrence is monotone in the degree on
  PSD inputs (each added Taylor term of ``exp`` is PSD, so traces grow).
"""

from __future__ import annotations

import numpy as np
from hypothesis import assume, given, settings
from hypothesis import strategies as st

from repro.backend.numpy_backend import batched_segment_sums, segment_sums
from repro.linalg.trace_estimation import gram_exp_trace
from repro.operators.packed import PackedGramFactors


@st.composite
def segmented_values(draw):
    """(values, offsets) with arbitrary segment widths, empties included."""
    widths = draw(
        st.lists(st.integers(min_value=0, max_value=5), min_size=0, max_size=6)
    )
    total = sum(widths)
    values = draw(
        st.lists(
            st.floats(-1e6, 1e6, allow_nan=False, allow_infinity=False, width=64),
            min_size=total,
            max_size=total,
        )
    )
    offsets = np.concatenate([[0], np.cumsum(widths, dtype=np.int64)])
    return np.asarray(values, dtype=np.float64), offsets


@settings(max_examples=60, deadline=None)
@given(segmented_values())
def test_segment_sums_partition_invariants(data):
    values, offsets = data
    sums = segment_sums(values, offsets)
    assert sums.shape == (offsets.shape[0] - 1,)
    # Empty segments are exactly zero; the partition conserves the total.
    widths = np.diff(offsets)
    assert np.all(sums[widths == 0] == 0.0)
    np.testing.assert_allclose(sums.sum(), values.sum(), rtol=1e-9, atol=1e-6)
    # Per-segment agreement with the obvious slice reduction.
    for i in range(widths.shape[0]):
        lo, hi = offsets[i], offsets[i + 1]
        np.testing.assert_allclose(
            sums[i], values[lo:hi].sum(), rtol=1e-9, atol=1e-6
        )


@settings(max_examples=40, deadline=None)
@given(segmented_values(), st.integers(min_value=1, max_value=3))
def test_batched_segment_sums_matches_rows(data, batch):
    values, offsets = data
    stacked = np.tile(values, (batch, 1)) * np.arange(1, batch + 1)[:, None]
    out = batched_segment_sums(stacked, offsets)
    assert out.shape == (batch, offsets.shape[0] - 1)
    for b in range(batch):
        np.testing.assert_array_equal(out[b], segment_sums(stacked[b], offsets))


@st.composite
def factor_stacks(draw):
    """A small list of per-constraint Gram factors with mixed ranks."""
    m = draw(st.integers(min_value=2, max_value=6))
    n = draw(st.integers(min_value=1, max_value=4))
    rng = np.random.default_rng(draw(st.integers(min_value=0, max_value=2**31)))
    ranks = [draw(st.integers(min_value=1, max_value=3)) for _ in range(n)]
    factors = [rng.standard_normal((m, r)) for r in ranks]
    weights = rng.uniform(0.0, 2.0, size=n)
    return factors, weights


@settings(max_examples=40, deadline=None)
@given(factor_stacks())
def test_packed_weighted_sum_round_trip(data):
    factors, weights = data
    packed = PackedGramFactors(factors)
    got = packed.weighted_sum(weights)
    want = sum(w * (q @ q.T) for w, q in zip(weights, factors))
    np.testing.assert_allclose(got, want, rtol=1e-10, atol=1e-10)
    # The packed traces are the factor Frobenius norms, segment-summed.
    np.testing.assert_allclose(
        packed.traces(),
        [float(np.sum(q * q)) for q in factors],
        rtol=1e-10,
        atol=1e-10,
    )


@settings(max_examples=30, deadline=None)
@given(factor_stacks(), st.integers(min_value=2, max_value=8))
def test_gram_trace_degree_monotonicity(data, degree):
    """Adding a Taylor term of ``exp`` on a PSD ``Psi`` never shrinks the trace."""
    factors, weights = data
    packed = PackedGramFactors(factors)
    assume(packed.total_rank <= packed.dim)  # the Gram-spectrum trace's domain
    gram = packed.gram_matrix()
    col_w = packed.expand_weights(weights)
    lo = gram_exp_trace(gram, col_w, packed.dim, degree, scale=0.5)
    hi = gram_exp_trace(gram, col_w, packed.dim, degree + 1, scale=0.5)
    assert hi >= lo - 1e-9 * max(abs(lo), 1.0)
