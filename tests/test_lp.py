"""Tests for the positive-LP substrate (problem class, Young, Luby–Nisan)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import InvalidProblemError
from repro.lp import (
    PackingLP,
    diagonal_sdp_from_packing_lp,
    luby_nisan_packing_lp,
    packing_lp_from_diagonal_sdp,
    young_packing_lp,
)
from repro.lp.young import young_decision_lp
from repro.problems.lp_instances import random_packing_lp, set_cover_lp
from repro.baselines.exact import exact_packing_value


class TestPackingLP:
    def test_construction_and_shape(self):
        lp = PackingLP(np.array([[1.0, 0.5], [0.0, 2.0]]))
        assert lp.num_constraints == 2
        assert lp.num_variables == 2
        assert lp.width == 2.0

    def test_rejects_negative_entries(self):
        with pytest.raises(InvalidProblemError):
            PackingLP(np.array([[1.0, -0.5]]))

    def test_rejects_nan(self):
        with pytest.raises(InvalidProblemError):
            PackingLP(np.array([[np.nan, 1.0]]))

    def test_rejects_unconstrained_variable(self):
        with pytest.raises(InvalidProblemError):
            PackingLP(np.array([[1.0, 0.0]]))

    def test_feasibility_and_value(self):
        lp = PackingLP(np.array([[1.0, 1.0], [2.0, 0.5]]))
        x = np.array([0.25, 0.25])
        assert lp.feasible(x)
        assert lp.value(x) == pytest.approx(0.5)
        assert not lp.feasible(np.array([1.0, 1.0]))

    def test_slack(self):
        lp = PackingLP(np.array([[1.0, 1.0]]))
        np.testing.assert_allclose(lp.slack(np.array([0.25, 0.25])), [0.5])


class TestDiagonalConversions:
    def test_roundtrip(self, rng):
        lp = random_packing_lp(4, 5, rng=rng)
        sdp = diagonal_sdp_from_packing_lp(lp)
        back = packing_lp_from_diagonal_sdp(sdp)
        np.testing.assert_allclose(back.matrix, lp.matrix, atol=1e-12)

    def test_non_diagonal_rejected(self, small_problem):
        with pytest.raises(InvalidProblemError):
            packing_lp_from_diagonal_sdp(small_problem)

    def test_sdp_and_lp_have_same_optimum(self, rng):
        lp = random_packing_lp(4, 4, rng=rng)
        sdp = diagonal_sdp_from_packing_lp(lp)
        sdp_value = exact_packing_value(sdp).value
        # Reference LP value via scipy linprog-free check: the diagonal SDP's
        # exact packing value must be achievable by an LP-feasible vector.
        lp_vector = exact_packing_value(sdp).x
        assert lp.feasible(lp_vector, tol=1e-6)
        assert lp.value(lp_vector) == pytest.approx(sdp_value, rel=1e-9)


class TestYoungLP:
    def test_known_optimum_single_constraint(self):
        # max x1 + x2 s.t. x1 + x2 <= 1  ->  OPT = 1.
        lp = PackingLP(np.array([[1.0, 1.0]]))
        result = young_packing_lp(lp, epsilon=0.1)
        assert lp.feasible(result.x, tol=1e-6)
        assert result.value >= 0.85
        assert result.upper_bound >= result.value

    def test_identity_constraints(self):
        # max sum x s.t. x_j <= 1 -> OPT = n.
        lp = PackingLP(np.eye(4))
        result = young_packing_lp(lp, epsilon=0.1)
        assert result.value >= 4 / 1.2
        assert result.upper_bound <= 4 * 1.3

    def test_certified_gap_meets_epsilon(self, rng):
        lp = random_packing_lp(5, 6, rng=rng)
        result = young_packing_lp(lp, epsilon=0.15)
        assert lp.feasible(result.x, tol=1e-6)
        assert result.relative_gap <= 0.15 + 1e-9

    def test_close_to_exact(self, rng):
        lp = random_packing_lp(4, 5, rng=rng)
        sdp = diagonal_sdp_from_packing_lp(lp)
        exact = exact_packing_value(sdp).value
        result = young_packing_lp(lp, epsilon=0.1)
        assert result.value >= exact / 1.12
        assert result.upper_bound >= exact * (1 - 1e-6)

    def test_invalid_epsilon(self, rng):
        lp = random_packing_lp(3, 3, rng=rng)
        with pytest.raises(InvalidProblemError):
            young_packing_lp(lp, epsilon=0.0)

    def test_decision_routine_dual_side(self):
        # Scaled so the optimum is clearly above 1: small coefficients.
        matrix = np.full((2, 3), 0.05)
        result, _ = young_decision_lp(matrix, epsilon=0.2)
        assert result.outcome == "dual"
        assert result.max_load > 0

    def test_decision_routine_primal_side(self):
        # Scaled so the optimum is clearly below 1: large coefficients.
        matrix = np.full((2, 3), 50.0)
        result, _ = young_decision_lp(matrix, epsilon=0.2)
        assert result.outcome == "primal"
        assert result.cover_min > 0

    def test_history_collection(self, rng):
        lp = random_packing_lp(3, 4, rng=rng)
        result = young_packing_lp(lp, epsilon=0.2, collect_history=True)
        assert isinstance(result.history, list)


class TestLubyNisanLP:
    def test_certified_gap(self, rng):
        lp = random_packing_lp(4, 5, rng=rng)
        result = luby_nisan_packing_lp(lp, epsilon=0.2)
        assert lp.feasible(result.x, tol=1e-6)
        assert result.relative_gap <= 0.2 + 1e-9
        assert result.phases >= 1

    def test_agrees_with_young(self, rng):
        lp = random_packing_lp(4, 4, rng=rng)
        young = young_packing_lp(lp, epsilon=0.15)
        ln = luby_nisan_packing_lp(lp, epsilon=0.15)
        # Both certify the same optimum within their epsilon bands.
        assert ln.value == pytest.approx(young.value, rel=0.35)

    def test_set_cover_instance(self, rng):
        lp = set_cover_lp(6, 8, coverage=2, rng=rng)
        result = luby_nisan_packing_lp(lp, epsilon=0.2)
        assert lp.feasible(result.x, tol=1e-6)
        assert result.value > 0

    def test_invalid_epsilon(self, rng):
        lp = random_packing_lp(3, 3, rng=rng)
        with pytest.raises(InvalidProblemError):
            luby_nisan_packing_lp(lp, epsilon=1.0)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(min_value=0, max_value=999))
def test_young_always_feasible_property(seed):
    """Property: Young's solver always returns an exactly feasible vector."""
    lp = random_packing_lp(3, 4, density=0.7, rng=seed)
    result = young_packing_lp(lp, epsilon=0.25)
    assert lp.feasible(result.x, tol=1e-6)
    assert result.value <= result.upper_bound + 1e-9
