"""Tests for repro.linalg.taylor_blocked (the fused blocked Taylor kernel).

The kernel must evaluate exactly the same Lemma 4.2 polynomial as the
per-term reference :func:`repro.linalg.taylor.taylor_expm_apply` — per
column, to 1e-10 — in every mode (dense factors, densified ``Psi``, sparse
factors, explicit matrix), with chunked application bit-for-bit identical
to unchunked.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import InvalidProblemError, NumericalError
from repro.linalg.taylor import TaylorExpmOperator, taylor_degree, taylor_expm_apply
from repro.linalg.taylor_blocked import BlockedTaylorKernel, blocked_taylor_apply
from repro.core.dotexp import FastDotExpOracle, big_dot_exp
from repro.operators import ConstraintCollection, FactorizedPSDOperator, PackedGramFactors


def _factors(m, r, seed, sparse=False, density=0.2):
    rng = np.random.default_rng(seed)
    if sparse:
        mat = sp.random(m, r, density=density, random_state=rng, format="csr")
        return mat if mat.nnz else sp.csr_matrix(np.eye(m)[:, :r])
    return rng.standard_normal((m, r)) / np.sqrt(m)


class TestKernelEquivalence:
    """Per-column agreement with the reference recurrence, all modes."""

    @pytest.mark.parametrize("r", [6, 60])  # r=6: factor mode, r=60: densified
    def test_matches_reference_per_column(self, r):
        m, s, degree = 24, 9, 18
        q = _factors(m, r, seed=r)
        w = np.random.default_rng(r + 1).random(r)
        psi = (q * w) @ q.T
        block = np.random.default_rng(2).standard_normal((m, s))
        kernel = BlockedTaylorKernel(q, w)
        out = kernel.apply(block, degree)
        for j in range(s):
            ref = taylor_expm_apply(psi, block[:, j], degree)
            np.testing.assert_allclose(out[:, j], ref, atol=1e-10, rtol=0)

    def test_mode_selection(self):
        m = 24
        assert not BlockedTaylorKernel(_factors(m, 6, 0), np.ones(6)).uses_dense_psi
        assert BlockedTaylorKernel(_factors(m, 60, 0), np.ones(60)).uses_dense_psi

    def test_scale_half_matches_reference(self):
        m, r, degree = 16, 5, 14
        q = _factors(m, r, seed=4)
        w = np.random.default_rng(5).random(r)
        psi = (q * w) @ q.T
        vec = np.random.default_rng(6).standard_normal(m)
        out = BlockedTaylorKernel(q, w).apply(vec, degree, scale=0.5)
        ref = taylor_expm_apply(0.5 * psi, vec, degree)
        np.testing.assert_allclose(out, ref, atol=1e-12)

    def test_sparse_factors_match_reference(self):
        m, r, degree = 30, 7, 16
        q = _factors(m, r, seed=8, sparse=True)
        w = np.random.default_rng(9).random(r)
        psi = np.asarray((q.multiply(w[None, :]) @ q.T).todense())
        block = np.random.default_rng(10).standard_normal((m, 4))
        kernel = BlockedTaylorKernel(q, w)
        np.testing.assert_allclose(
            kernel.apply(block, degree), taylor_expm_apply(psi, block, degree), atol=1e-10
        )

    def test_from_matrix_dense_and_sparse(self):
        m, degree = 18, 12
        q = _factors(m, 4, seed=11)
        psi = q @ q.T
        block = np.random.default_rng(12).standard_normal((m, 5))
        ref = taylor_expm_apply(psi, block, degree)
        np.testing.assert_allclose(
            BlockedTaylorKernel.from_matrix(psi).apply(block, degree), ref, atol=1e-10
        )
        np.testing.assert_allclose(
            BlockedTaylorKernel.from_matrix(sp.csr_matrix(psi)).apply(block, degree),
            ref,
            atol=1e-10,
        )

    def test_convenience_wrapper(self):
        m, r = 12, 3
        q = _factors(m, r, seed=13)
        w = np.ones(r)
        block = np.random.default_rng(14).standard_normal((m, 2))
        np.testing.assert_array_equal(
            blocked_taylor_apply(q, w, block, 9),
            BlockedTaylorKernel(q, w).apply(block, 9),
        )


class TestChunking:
    # Columns are independent, so chunking computes the same per-column
    # quantities; only last-ulp BLAS reordering (width-dependent internal
    # blocking) may differ, bounded here at 1e-12.
    @pytest.mark.parametrize("chunk", [1, 3, 7, 100])
    def test_chunked_identical_to_unchunked(self, chunk):
        m, r, s, degree = 20, 40, 13, 15  # densified mode
        q = _factors(m, r, seed=20)
        w = np.random.default_rng(21).random(r)
        block = np.random.default_rng(22).standard_normal((m, s))
        kernel = BlockedTaylorKernel(q, w)
        np.testing.assert_allclose(
            kernel.apply(block, degree),
            kernel.apply(block, degree, chunk_columns=chunk),
            rtol=1e-12,
            atol=1e-12,
        )

    def test_factor_mode_chunked_identical(self):
        m, r, s = 20, 4, 11  # factor mode
        q = _factors(m, r, seed=23)
        w = np.random.default_rng(24).random(r)
        block = np.random.default_rng(25).standard_normal((m, s))
        kernel = BlockedTaylorKernel(q, w, chunk_columns=4)
        unchunked = BlockedTaylorKernel(q, w)
        np.testing.assert_allclose(
            kernel.apply(block, 10), unchunked.apply(block, 10), rtol=1e-12, atol=1e-12
        )


class TestKernelValidation:
    def test_degree_one_is_identity(self):
        q = _factors(10, 3, seed=30)
        block = np.random.default_rng(31).standard_normal((10, 4))
        np.testing.assert_array_equal(
            BlockedTaylorKernel(q, np.ones(3)).apply(block, 1), block
        )

    def test_single_vector_shape(self):
        q = _factors(10, 3, seed=32)
        vec = np.random.default_rng(33).standard_normal(10)
        out = BlockedTaylorKernel(q, np.ones(3)).apply(vec, 8)
        assert out.shape == (10,)

    def test_invalid_degree(self):
        kernel = BlockedTaylorKernel(_factors(6, 2, 0), np.ones(2))
        with pytest.raises(ValueError):
            kernel.apply(np.ones(6), 0)

    def test_weight_length_mismatch(self):
        with pytest.raises(InvalidProblemError):
            BlockedTaylorKernel(_factors(6, 2, 0), np.ones(3))

    def test_negative_weights_rejected(self):
        with pytest.raises(InvalidProblemError):
            BlockedTaylorKernel(_factors(6, 2, 0), np.array([1.0, -1.0]))

    def test_wrong_block_rows(self):
        kernel = BlockedTaylorKernel(_factors(6, 2, 0), np.ones(2))
        with pytest.raises(InvalidProblemError):
            kernel.apply(np.ones((5, 2)), 3)

    def test_overflow_detection(self):
        q = np.diag([30.0, 0.0])  # Psi = diag(900, 0), huge spectral norm
        kernel = BlockedTaylorKernel(q, np.ones(2))
        with pytest.raises(NumericalError):
            kernel.apply(np.full(2, 1e300), 60)

    def test_matvec_count(self):
        kernel = BlockedTaylorKernel(_factors(8, 2, 0), np.ones(2))
        kernel.apply(np.ones((8, 5)), 7)
        assert kernel.matvec_count == 5 * 6
        kernel.apply(np.ones(8), 4)
        assert kernel.matvec_count == 5 * 6 + 3

    def test_matvec_matches_psi(self):
        m, r = 14, 40
        q = _factors(m, r, seed=40)
        w = np.random.default_rng(41).random(r)
        kernel = BlockedTaylorKernel(q, w)
        vec = np.random.default_rng(42).standard_normal(m)
        np.testing.assert_allclose(kernel.matvec(vec), ((q * w) @ q.T) @ vec, atol=1e-12)


class TestTaylorExpmOperatorBlockedPath:
    def test_matrix_input_matches_callable_input(self, rng):
        from repro.linalg.psd import random_psd

        mat = random_psd(10, rng=rng, scale=1.5)
        block = rng.standard_normal((10, 3))
        op_mat = TaylorExpmOperator(mat, kappa=1.5, eps=0.05)
        op_fn = TaylorExpmOperator(lambda v: mat @ v, kappa=1.5, eps=0.05, dim=10)
        np.testing.assert_allclose(op_mat.apply(block), op_fn.apply(block), atol=1e-11)
        assert op_mat.matvec_count == op_fn.matvec_count

    def test_kernel_input(self):
        q = _factors(12, 3, seed=50)
        w = np.random.default_rng(51).random(3)
        kernel = BlockedTaylorKernel(q, w)
        op = TaylorExpmOperator(kernel, kappa=1.0, eps=0.1)
        vec = np.random.default_rng(52).standard_normal(12)
        ref = taylor_expm_apply(0.5 * ((q * w) @ q.T), vec, op.degree)
        np.testing.assert_allclose(op.apply(vec), ref, atol=1e-11)
        assert op.matvec_count == op.degree - 1


class TestBigDotExpKernelPath:
    def _collection(self, n=10, m=16, seed=60):
        rng = np.random.default_rng(seed)
        return ConstraintCollection(
            [
                FactorizedPSDOperator(0.3 * rng.standard_normal((m, 2)))
                for _ in range(n)
            ]
        )

    def test_kernel_matches_matvec_closure_nosketch(self):
        coll = self._collection()
        packed = coll.packed()
        x = np.random.default_rng(61).random(len(coll)) / len(coll)
        kernel = packed.taylor_kernel(x)
        loop = big_dot_exp(
            packed.matvec_fn(x), packed, kappa=2.0, eps=0.2, use_sketch=False, dim=coll.dim
        )
        fused = big_dot_exp(kernel, packed, kappa=2.0, eps=0.2, use_sketch=False)
        np.testing.assert_allclose(fused, loop, rtol=1e-10, atol=1e-12)

    def test_kernel_matches_matvec_closure_sketched(self):
        coll = self._collection(m=12)
        packed = coll.packed()
        x = np.random.default_rng(62).random(len(coll)) / len(coll)
        kernel = packed.taylor_kernel(x)
        # Identical rng seeds -> identical sketch draws on both paths.
        loop, tr_loop = big_dot_exp(
            packed.matvec_fn(x), packed, kappa=2.0, eps=0.2, rng=5, dim=coll.dim,
            return_trace=True,
        )
        fused, tr_fused = big_dot_exp(
            kernel, packed, kappa=2.0, eps=0.2, rng=5, return_trace=True
        )
        np.testing.assert_allclose(fused, loop, rtol=1e-9, atol=1e-12)
        assert tr_fused == pytest.approx(tr_loop, rel=1e-9)

    def test_matrix_phi_routed_through_kernel(self):
        coll = self._collection()
        packed = coll.packed()
        x = np.random.default_rng(63).random(len(coll)) / len(coll)
        phi = coll.weighted_sum(x)
        reference = big_dot_exp(phi, coll.gram_factors(), kappa=2.0, eps=0.2, use_sketch=False)
        fused = big_dot_exp(phi, packed, kappa=2.0, eps=0.2, use_sketch=False)
        np.testing.assert_allclose(fused, reference, rtol=1e-9, atol=1e-12)

    def test_oracle_blocked_matches_unblocked_values(self):
        x = np.random.default_rng(64).random(10) / 10
        outputs = {}
        for blocked in (True, False):
            coll = self._collection()
            oracle = FastDotExpOracle(coll, eps=0.1, rng=17, packed=True, blocked=blocked)
            outputs[blocked] = oracle(np.zeros((coll.dim, coll.dim)), x)
        np.testing.assert_allclose(
            outputs[True].values, outputs[False].values, rtol=1e-8, atol=1e-12
        )
        assert outputs[True].trace == pytest.approx(outputs[False].trace, rel=1e-8)
        assert outputs[True].work == outputs[False].work

    def test_packed_taylor_kernel_validates_weights(self):
        coll = self._collection()
        packed = coll.packed()
        with pytest.raises(InvalidProblemError):
            packed.taylor_kernel(np.ones(len(coll) + 1))

    def test_chunked_oracle_matches_unchunked(self):
        x = np.random.default_rng(65).random(10) / 10
        outputs = {}
        for chunk in (None, 3):
            coll = self._collection()
            oracle = FastDotExpOracle(
                coll, eps=0.1, rng=23, packed=True, taylor_chunk_columns=chunk
            )
            outputs[chunk] = oracle(np.zeros((coll.dim, coll.dim)), x)
        np.testing.assert_allclose(
            outputs[None].values, outputs[3].values, rtol=1e-11, atol=1e-14
        )
