"""Tests for the workload generators in repro.problems."""

from __future__ import annotations

import networkx as nx
import numpy as np
import pytest

from repro.exceptions import InvalidProblemError
from repro.linalg.psd import is_psd
from repro.operators.diagonal import DiagonalPSDOperator
from repro.operators.factorized import FactorizedPSDOperator
from repro.problems import (
    beamforming_sdp,
    diagonal_packing_sdp,
    maxcut_sdp,
    maxcut_value_bound,
    random_factorized_packing_sdp,
    random_graph,
    random_packing_lp,
    random_packing_sdp,
    random_positive_sdp,
    random_width_controlled_sdp,
    set_cover_lp,
    sparse_pca_sdp,
)


class TestRandomPackingSDP:
    def test_shapes(self, rng):
        problem = random_packing_sdp(5, 7, rng=rng)
        assert problem.num_constraints == 5
        assert problem.dim == 7

    def test_all_constraints_psd(self, rng):
        problem = random_packing_sdp(4, 5, rng=rng)
        for op in problem.constraints:
            assert is_psd(op.to_dense())

    def test_reproducibility(self):
        a = random_packing_sdp(3, 4, rng=11)
        b = random_packing_sdp(3, 4, rng=11)
        for op_a, op_b in zip(a.constraints, b.constraints):
            np.testing.assert_array_equal(op_a.to_dense(), op_b.to_dense())

    def test_rank_control(self, rng):
        problem = random_packing_sdp(3, 6, rank=2, rng=rng)
        for op in problem.constraints:
            eigvals = np.linalg.eigvalsh(op.to_dense())
            assert np.sum(eigvals > 1e-9) <= 2

    def test_invalid_sizes(self):
        with pytest.raises(InvalidProblemError):
            random_packing_sdp(0, 3)


class TestFactorizedGenerator:
    def test_operators_are_factorized(self, rng):
        problem = random_factorized_packing_sdp(4, 6, rank=2, density=0.5, rng=rng)
        for op in problem.constraints:
            assert isinstance(op, FactorizedPSDOperator)
            assert op.rank == 2

    def test_density_controls_nnz(self):
        sparse = random_factorized_packing_sdp(6, 20, rank=3, density=0.2, rng=5)
        dense = random_factorized_packing_sdp(6, 20, rank=3, density=1.0, rng=5)
        assert sparse.constraints.total_nnz < dense.constraints.total_nnz

    def test_invalid_density(self):
        with pytest.raises(InvalidProblemError):
            random_factorized_packing_sdp(3, 4, density=0.0)

    def test_invalid_rank(self):
        with pytest.raises(InvalidProblemError):
            random_factorized_packing_sdp(3, 4, rank=0)


class TestWidthControlledGenerator:
    @pytest.mark.parametrize("width", [1.0, 8.0, 64.0])
    def test_width_is_exact(self, width):
        problem = random_width_controlled_sdp(4, 5, width=width, rng=3)
        assert problem.constraints.width() == pytest.approx(width, rel=1e-8)

    def test_invalid_width(self):
        with pytest.raises(InvalidProblemError):
            random_width_controlled_sdp(3, 4, width=0.5)


class TestRandomPositiveSDP:
    def test_valid_general_instance(self, rng):
        problem = random_positive_sdp(3, 4, rng=rng)
        problem.validate()  # should not raise
        assert np.all(problem.rhs > 0)


class TestGraphInstances:
    def test_random_graph_kinds(self, rng):
        for kind in ("cycle", "complete", "star", "grid", "regular", "erdos_renyi"):
            graph = random_graph(kind, 8, rng=rng)
            assert graph.number_of_nodes() >= 2

    def test_unknown_kind(self):
        with pytest.raises(InvalidProblemError):
            random_graph("hypercube-of-doom", 8)

    def test_maxcut_sdp_structure(self):
        graph = nx.cycle_graph(6)
        problem = maxcut_sdp(graph)
        assert problem.num_constraints == 6
        assert problem.dim == 6
        for op in problem.constraints:
            dense = op.to_dense()
            # Each edge matrix is 1/4 (e_u - e_v)(e_u - e_v)^T: trace 1/2.
            assert np.trace(dense) == pytest.approx(0.5)
            assert np.linalg.matrix_rank(dense) == 1

    def test_maxcut_weighted_edges(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, weight=2.0)
        graph.add_edge(1, 2, weight=0.0)
        problem = maxcut_sdp(graph)
        # Zero-weight edges are skipped.
        assert problem.num_constraints == 1
        assert np.trace(problem.constraints[0].to_dense()) == pytest.approx(1.0)

    def test_maxcut_negative_weight_rejected(self):
        graph = nx.Graph()
        graph.add_edge(0, 1, weight=-1.0)
        with pytest.raises(InvalidProblemError):
            maxcut_sdp(graph)

    def test_maxcut_empty_graph_rejected(self):
        with pytest.raises(InvalidProblemError):
            maxcut_sdp(nx.empty_graph(3))

    def test_value_bound_positive(self):
        graph = nx.cycle_graph(8)
        assert maxcut_value_bound(graph) > 0

    def test_cycle_packing_optimum_known(self):
        """For the n-cycle the uniform solution x_e = 4 / lambda_max(L) is
        optimal by symmetry (the feasible set and objective are invariant
        under the cycle's automorphisms), so OPT = |E| * 4 / lambda_max(L)."""
        from repro.baselines.exact import exact_packing_value

        graph = nx.cycle_graph(6)
        problem = maxcut_sdp(graph)
        lam_max = float(np.linalg.eigvalsh(nx.laplacian_matrix(graph).toarray().astype(float))[-1])
        expected = graph.number_of_edges() * 4.0 / lam_max
        assert exact_packing_value(problem).value == pytest.approx(expected, rel=1e-3)


class TestBeamforming:
    def test_structure(self, rng):
        problem = beamforming_sdp(3, 5, rng=rng)
        assert problem.dim == 6  # real embedding doubles the antenna count
        assert problem.num_constraints == 5
        for op in problem.constraints:
            assert np.linalg.matrix_rank(op.to_dense()) == 1

    def test_power_shaping_objective(self, rng):
        problem = beamforming_sdp(2, 3, power_shaping=True, rng=rng)
        assert not np.allclose(problem.objective.to_dense(), np.eye(4))

    def test_snr_targets_become_rhs(self, rng):
        problem = beamforming_sdp(2, 3, snr_targets=2.5, rng=rng)
        np.testing.assert_allclose(problem.rhs, 2.5)

    def test_invalid_targets(self, rng):
        with pytest.raises(InvalidProblemError):
            beamforming_sdp(2, 3, snr_targets=0.0, rng=rng)

    def test_invalid_sizes(self):
        with pytest.raises(InvalidProblemError):
            beamforming_sdp(0, 3)


class TestLPInstances:
    def test_random_lp_every_variable_constrained(self, rng):
        lp = random_packing_lp(5, 8, density=0.3, rng=rng)
        assert np.all(lp.matrix.max(axis=0) > 0)

    def test_set_cover_coverage(self, rng):
        lp = set_cover_lp(6, 10, coverage=2, rng=rng)
        col_counts = (lp.matrix > 0).sum(axis=0)
        assert np.all(col_counts == 2)

    def test_set_cover_invalid_coverage(self, rng):
        with pytest.raises(InvalidProblemError):
            set_cover_lp(3, 5, coverage=10, rng=rng)

    def test_diagonal_packing_pair_consistent(self, rng):
        sdp, lp = diagonal_packing_sdp(4, 5, rng=rng)
        assert sdp.num_constraints == lp.num_variables
        for j, op in enumerate(sdp.constraints):
            assert isinstance(op, DiagonalPSDOperator)
            np.testing.assert_allclose(op.diagonal, lp.matrix[:, j])


class TestSparsePCA:
    def test_structure(self, rng):
        problem = sparse_pca_sdp(6, 5, rng=rng)
        assert problem.num_constraints == 6
        assert problem.dim == 5
        for op in problem.constraints:
            assert np.linalg.matrix_rank(op.to_dense()) == 1

    def test_spike_raises_width(self):
        flat = sparse_pca_sdp(10, 6, spike_rank=0, rng=9)
        spiked = sparse_pca_sdp(10, 6, spike_rank=1, spike_strength=25.0, rng=9)
        assert spiked.constraints.width() > flat.constraints.width()

    def test_invalid_args(self):
        with pytest.raises(InvalidProblemError):
            sparse_pca_sdp(0, 3)
        with pytest.raises(InvalidProblemError):
            sparse_pca_sdp(3, 3, spike_rank=5)
        with pytest.raises(InvalidProblemError):
            sparse_pca_sdp(3, 3, spike_strength=0.0)
