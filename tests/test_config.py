"""Tests for repro.config."""

from __future__ import annotations

import pytest

from repro.config import ReproConfig, config_override, get_config, set_config


class TestReproConfig:
    def test_defaults_are_sane(self):
        cfg = ReproConfig()
        assert 0 < cfg.psd_tol < 1e-3
        assert 0 < cfg.default_epsilon < 1
        assert cfg.power_iteration_maxiter > 10

    def test_replace_returns_modified_copy(self):
        cfg = ReproConfig()
        new = cfg.replace(psd_tol=1e-4)
        assert new.psd_tol == 1e-4
        assert cfg.psd_tol != 1e-4
        assert new is not cfg

    def test_set_config_type_check(self):
        with pytest.raises(TypeError):
            set_config({"psd_tol": 1.0})  # type: ignore[arg-type]

    def test_set_and_get_roundtrip(self):
        original = get_config()
        try:
            replacement = original.replace(default_epsilon=0.05)
            set_config(replacement)
            assert get_config().default_epsilon == 0.05
        finally:
            set_config(original)


class TestConfigOverride:
    def test_override_is_scoped(self):
        before = get_config().psd_tol
        with config_override(psd_tol=1e-5) as cfg:
            assert cfg.psd_tol == 1e-5
            assert get_config().psd_tol == 1e-5
        assert get_config().psd_tol == before

    def test_override_restores_on_exception(self):
        before = get_config().feasibility_tol
        with pytest.raises(RuntimeError):
            with config_override(feasibility_tol=1.0):
                raise RuntimeError("boom")
        assert get_config().feasibility_tol == before

    def test_nested_overrides(self):
        with config_override(psd_tol=1e-5):
            with config_override(psd_tol=1e-3):
                assert get_config().psd_tol == 1e-3
            assert get_config().psd_tol == 1e-5
