"""The resilient solve service: determinism, deadlines, retries, shedding.

Every test drives :class:`~repro.service.SolveService` on a
:class:`~repro.service.VirtualClock`, so schedules (backoff waits, deadline
expiry) are bit-reproducible.  The core contracts:

* a request's answer is bitwise the direct ``decision_psdp`` solve on the
  stream ``instance_rng(seed, request_id)`` — independent of batching,
  checkpoint/resume slicing, or queue composition;
* every terminal condition is a typed :class:`RequestOutcome` — the
  service never raises for load/fault reasons and never drops a request;
* the whole retry/backoff schedule replays bit-identically when the same
  request sequence is fed to a fresh service with the same seed.
"""

import numpy as np
import pytest

from repro.core.batch import instance_rng
from repro.core.decision import DecisionOptions, decision_psdp
from repro.core.result import SolveStatus
from repro.exceptions import InvalidProblemError
from repro.robustness import NaN, clear_faults, inject
from repro.service import RequestOutcome, SolveService, VirtualClock

from helpers import assert_results_identical, factorized_family


@pytest.fixture(autouse=True)
def _no_leftover_faults():
    yield
    clear_faults()


def collection(seed=11):
    # Fresh per solve: first use builds the packed view, which would
    # perturb a later solve's traces() rounding on the same object.
    return factorized_family(seed, n=8, m=24, rank=2, scale=0.35)


def gram_collection(seed=7):
    # Low total rank routes the Taylor engine through the gram kernel,
    # where the fault-injection site "taylor_gram.apply" lives.
    return factorized_family(seed, n=6, m=24, rank=1, scale=0.3)


def assert_same_solve(actual, expected, label):
    """Bitwise result equality, exempting the supervisor *budget* fields.

    The service applies per-attempt budgets, so the final resumed
    result's ``metadata["supervisor"]`` records an ``iteration_budget``
    where the direct solve has ``None`` — everything else must match.
    """
    import dataclasses

    def neutral(result):
        meta = dict(result.metadata)
        sup = meta.get("supervisor")
        if isinstance(sup, dict):
            meta["supervisor"] = {
                k: v
                for k, v in sup.items()
                if k not in ("iteration_budget", "wall_clock_budget", "elapsed")
            }
        return dataclasses.replace(result, metadata=meta)

    assert_results_identical(neutral(actual), neutral(expected), label=label)


def options(**overrides):
    base = dict(epsilon=0.25, oracle="fast")
    base.update(overrides)
    return DecisionOptions(**base)


def make_service(**overrides):
    kwargs = dict(options=options(), seed=0, clock=VirtualClock())
    kwargs.update(overrides)
    return SolveService(**kwargs)


class TestConstruction:
    def test_invalid_queue_depth_rejected(self):
        with pytest.raises(InvalidProblemError):
            make_service(max_queue_depth=0)

    def test_invalid_attempt_budget_rejected(self):
        with pytest.raises(InvalidProblemError):
            make_service(attempt_iteration_budget=0)

    def test_invalid_max_attempts_rejected(self):
        service = make_service()
        with pytest.raises(InvalidProblemError):
            service.submit(collection(), max_attempts=0)

    def test_virtual_clock_is_monotonic(self):
        clock = VirtualClock()
        assert clock() == 0.0
        clock.advance(2.5)
        assert clock() == 2.5
        with pytest.raises(ValueError):
            clock.advance(-1.0)


class TestDeterministicStreams:
    def test_single_request_matches_direct_solve(self):
        service = make_service()
        rid = service.submit(collection())
        responses = service.drain()
        response = responses[rid]
        assert response.outcome is RequestOutcome.COMPLETED
        direct = decision_psdp(
            collection(), options=options(rng=instance_rng(0, rid))
        )
        assert_results_identical(response.result, direct, label="service-vs-direct")

    def test_batched_requests_keep_their_streams(self):
        # Three compatible requests batch through solve_many, but each
        # answer is still the request's own pinned stream.
        service = make_service()
        seeds = [11, 23, 47]
        rids = [service.submit(collection(seed)) for seed in seeds]
        service.drain()
        for seed, rid in zip(seeds, rids):
            response = service.response(rid)
            assert response.outcome is RequestOutcome.COMPLETED
            direct = decision_psdp(
                collection(seed), options=options(rng=instance_rng(0, rid))
            )
            assert_results_identical(response.result, direct, label=f"rid={rid}")

    def test_two_services_same_seed_bit_identical(self):
        def run():
            service = make_service()
            rids = [service.submit(collection(seed)) for seed in (11, 23)]
            service.drain()
            return [service.response(rid) for rid in rids]

        a, b = run(), run()
        for ra, rb in zip(a, b):
            assert ra.outcome is rb.outcome
            assert_results_identical(ra.result, rb.result, label="replay")


class TestCheckpointResume:
    def test_attempt_budget_resumes_to_full_answer(self):
        service = make_service(attempt_iteration_budget=5)
        rid = service.submit(collection())
        service.drain()
        response = service.response(rid)
        assert response.outcome is RequestOutcome.COMPLETED
        assert response.resumes > 0  # went through at least one checkpoint
        direct = decision_psdp(
            collection(), options=options(rng=instance_rng(0, rid))
        )
        assert_same_solve(response.result, direct, label="resume-chain")

    def test_resumes_do_not_consume_retry_attempts(self):
        service = make_service(attempt_iteration_budget=3)
        rid = service.submit(collection(), max_attempts=1)
        service.drain()
        response = service.response(rid)
        assert response.outcome is RequestOutcome.COMPLETED
        assert response.attempts == 0  # no *failed* attempt was recorded
        assert response.resumes > 0


class TestCache:
    def test_repeat_instance_served_from_cache(self):
        service = make_service()
        first = service.submit(collection())
        service.drain()
        again = service.submit(collection())
        response = service.response(again)
        assert response.from_cache
        assert response.outcome is RequestOutcome.COMPLETED
        assert response.result is service.response(first).result

    def test_different_options_miss_the_cache(self):
        service = make_service()
        service.submit(collection())
        service.drain()
        rid = service.submit(collection(), options=options(epsilon=0.2))
        assert service.response(rid) is None  # queued, not served from cache
        service.drain()
        assert not service.response(rid).from_cache

    def test_cache_eviction_is_lru(self):
        service = make_service(cache_size=1)
        service.submit(collection(11))
        service.drain()
        service.submit(collection(23))
        service.drain()
        # seed-11 was evicted; resubmitting it queues a real solve.
        rid = service.submit(collection(11))
        assert service.response(rid) is None


class TestDeadlines:
    def test_expired_deadline_rejected_at_admission(self):
        clock = VirtualClock(start=10.0)
        service = make_service(clock=clock)
        rid = service.submit(collection(), deadline=5.0)
        response = service.response(rid)
        assert response.outcome is RequestOutcome.DEADLINE_EXCEEDED
        assert response.result is None

    def test_deadline_passing_while_queued_is_typed(self):
        clock = VirtualClock()
        service = make_service(clock=clock, attempt_iteration_budget=2)
        rid = service.submit(collection(), deadline=5.0)
        service.step()  # one budget-limited slice; checkpoint goes back to queue
        assert service.response(rid) is None
        clock.advance(10.0)
        service.step()
        response = service.response(rid)
        assert response.outcome is RequestOutcome.DEADLINE_EXCEEDED
        # The last verified partial result rides along.
        assert response.result is not None
        assert response.result.status is SolveStatus.BUDGET_EXHAUSTED


class TestLoadShedding:
    def test_queue_full_with_cold_cache_sheds_typed(self):
        service = make_service(max_queue_depth=1)
        service.submit(collection(11))
        rid = service.submit(collection(23))
        response = service.response(rid)
        assert response.outcome is RequestOutcome.SHED
        assert "queue depth" in response.detail

    def test_queue_full_with_warm_cache_serves_certificate(self):
        service = make_service(max_queue_depth=1)
        warm = service.submit(collection(11))
        service.drain()
        assert service.response(warm).outcome is RequestOutcome.COMPLETED
        service.submit(collection(23))  # fills the queue
        # A slightly perturbed variant of the cached instance arrives
        # while the queue is full: served by re-verifying the cached dual
        # on the *new* instance.
        perturbed = factorized_family(11, n=8, m=24, rank=2, scale=0.349)
        rid = service.submit(perturbed)
        response = service.response(rid)
        assert response.outcome is RequestOutcome.DEGRADED
        assert response.warm_started
        result = response.result
        assert result.metadata["warm_start"]
        # Soundness: the certificate is exactly verified on the instance
        # it was returned for.
        fresh = factorized_family(11, n=8, m=24, rank=2, scale=0.349)
        lam = float(
            np.linalg.eigvalsh(fresh.weighted_sum(result.dual_x))[-1]
        )
        assert lam <= 1.0 + 1e-9
        assert result.dual_value >= 1.0 - result.epsilon

    def test_shed_never_raises_never_drops(self):
        service = make_service(max_queue_depth=1)
        rids = [service.submit(collection(seed)) for seed in range(20)]
        service.drain()
        for rid in rids:
            assert service.response(rid) is not None  # every request answered


class TestRetryBackoff:
    def _run_failing_service(self):
        clock = VirtualClock()
        service = make_service(
            options=options(max_recoveries=0), clock=clock, seed=7
        )
        with inject("taylor_gram.apply", NaN, at_call=1, times=10**6, seed=0):
            rid = service.submit(gram_collection(), max_attempts=3)
            events = []
            while service.response(rid) is None:
                service.step()
                events.append((clock(), service.next_ready_time()))
                nxt = service.next_ready_time()
                if nxt is not None and nxt > clock():
                    clock.advance(nxt - clock())
        clear_faults()
        return service.response(rid), events

    def test_retry_exhausted_is_typed(self):
        response, _ = self._run_failing_service()
        assert response.outcome is RequestOutcome.RETRY_EXHAUSTED
        assert response.attempts == 3
        assert response.result is not None
        assert response.result.status is SolveStatus.FAILED

    def test_backoff_schedule_replays_bit_identically(self):
        _, events_a = self._run_failing_service()
        _, events_b = self._run_failing_service()
        assert events_a == events_b

    def test_backoff_grows_and_caps(self):
        service = make_service(
            backoff_base=0.5, backoff_cap=2.0, backoff_jitter=0.0, seed=7
        )

        class Stub:
            request_id = 4
            attempts = 0

        stub = Stub()
        delays = []
        for attempt in (1, 2, 3, 4, 5):
            stub.attempts = attempt
            delays.append(service._backoff(stub))
        assert delays == [0.5, 1.0, 2.0, 2.0, 2.0]


class TestPriorities:
    def test_higher_priority_served_first(self):
        service = make_service()
        low = service.submit(collection(11), options=options(epsilon=0.3), priority=0)
        high = service.submit(collection(23), options=options(epsilon=0.2), priority=5)
        service.step()  # incompatible options: one batch per step
        assert service.response(high) is not None
        assert service.response(low) is None
        service.step()
        assert service.response(low) is not None
