"""Tests for repro.utils.validation."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import InvalidProblemError
from repro.utils.validation import (
    as_float_array,
    check_square,
    check_symmetric,
    ensure_1d,
    ensure_positive_scalar,
    symmetrize,
)


class TestAsFloatArray:
    def test_list_input(self):
        arr = as_float_array([[1, 2], [3, 4]])
        assert arr.dtype == np.float64
        assert arr.flags["C_CONTIGUOUS"]

    def test_sparse_input_densified(self):
        arr = as_float_array(sp.eye(3, format="csr"))
        np.testing.assert_allclose(arr, np.eye(3))

    def test_rejects_nan(self):
        with pytest.raises(InvalidProblemError):
            as_float_array([1.0, np.nan])

    def test_rejects_inf(self):
        with pytest.raises(InvalidProblemError):
            as_float_array([1.0, np.inf])


class TestCheckSquare:
    def test_accepts_square(self):
        mat = check_square(np.ones((3, 3)))
        assert mat.shape == (3, 3)

    def test_rejects_rectangular(self):
        with pytest.raises(InvalidProblemError):
            check_square(np.ones((2, 3)))

    def test_rejects_1d(self):
        with pytest.raises(InvalidProblemError):
            check_square(np.ones(4))


class TestCheckSymmetric:
    def test_accepts_symmetric(self):
        mat = np.array([[1.0, 2.0], [2.0, 3.0]])
        out = check_symmetric(mat)
        np.testing.assert_allclose(out, out.T)

    def test_rejects_asymmetric(self):
        mat = np.array([[1.0, 2.0], [0.0, 3.0]])
        with pytest.raises(InvalidProblemError):
            check_symmetric(mat)

    def test_tolerates_tiny_asymmetry(self):
        mat = np.array([[1.0, 2.0], [2.0 + 1e-14, 3.0]])
        out = check_symmetric(mat)
        np.testing.assert_allclose(out, out.T)

    def test_output_exactly_symmetric(self):
        rng = np.random.default_rng(0)
        base = rng.standard_normal((6, 6))
        mat = base + base.T + 1e-12 * rng.standard_normal((6, 6))
        out = check_symmetric(mat)
        assert np.array_equal(out, out.T)


class TestSymmetrize:
    def test_symmetrize_average(self):
        mat = np.array([[0.0, 2.0], [0.0, 0.0]])
        np.testing.assert_allclose(symmetrize(mat), [[0.0, 1.0], [1.0, 0.0]])


class TestEnsure1d:
    def test_flattens(self):
        assert ensure_1d([[1.0], [2.0]]).shape == (2,)

    def test_scalar_becomes_vector(self):
        assert ensure_1d(3.0).shape == (1,)

    def test_rejects_nan(self):
        with pytest.raises(InvalidProblemError):
            ensure_1d([np.nan])


class TestEnsurePositiveScalar:
    def test_accepts_positive(self):
        assert ensure_positive_scalar(2) == 2.0

    def test_rejects_zero_when_strict(self):
        with pytest.raises(InvalidProblemError):
            ensure_positive_scalar(0.0)

    def test_accepts_zero_when_not_strict(self):
        assert ensure_positive_scalar(0.0, strict=False) == 0.0

    def test_rejects_negative(self):
        with pytest.raises(InvalidProblemError):
            ensure_positive_scalar(-1.0, strict=False)

    def test_rejects_non_numeric(self):
        with pytest.raises(InvalidProblemError):
            ensure_positive_scalar("abc")

    def test_rejects_infinite(self):
        with pytest.raises(InvalidProblemError):
            ensure_positive_scalar(np.inf)
