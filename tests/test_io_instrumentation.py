"""Tests for repro.io serialization and repro.instrumentation."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidProblemError
from repro.instrumentation import ConvergenceHistory, ExperimentReport, IterationRecord, OracleCounters
from repro.io import (
    load_normalized_sdp,
    load_positive_sdp,
    save_normalized_sdp,
    save_positive_sdp,
)
from repro.problems.random_instances import random_packing_sdp, random_positive_sdp


class TestSerialization:
    def test_normalized_roundtrip(self, tmp_path, rng):
        problem = random_packing_sdp(4, 5, rng=rng)
        path = save_normalized_sdp(tmp_path / "instance.npz", problem)
        loaded = load_normalized_sdp(path)
        assert loaded.num_constraints == problem.num_constraints
        assert loaded.dim == problem.dim
        assert loaded.name == problem.name
        for a, b in zip(loaded.constraints, problem.constraints):
            np.testing.assert_allclose(a.to_dense(), b.to_dense(), atol=1e-12)

    def test_positive_roundtrip(self, tmp_path, rng):
        problem = random_positive_sdp(3, 4, rng=rng)
        path = save_positive_sdp(tmp_path / "general.npz", problem)
        loaded = load_positive_sdp(path)
        np.testing.assert_allclose(loaded.objective.to_dense(), problem.objective.to_dense(), atol=1e-12)
        np.testing.assert_allclose(loaded.rhs, problem.rhs, atol=1e-12)
        assert loaded.num_constraints == problem.num_constraints

    def test_kind_mismatch_detected(self, tmp_path, rng):
        problem = random_packing_sdp(3, 4, rng=rng)
        path = save_normalized_sdp(tmp_path / "instance.npz", problem)
        with pytest.raises(InvalidProblemError):
            load_positive_sdp(path)

    def test_normalized_kind_mismatch_detected(self, tmp_path, rng):
        problem = random_positive_sdp(3, 4, rng=rng)
        path = save_positive_sdp(tmp_path / "general.npz", problem)
        with pytest.raises(InvalidProblemError):
            load_normalized_sdp(path)


class TestConvergenceHistory:
    def _record(self, t, norm):
        return IterationRecord(iteration=t, x_norm=norm, updated=2, min_value=0.5, max_value=1.5)

    def test_append_and_access(self):
        history = ConvergenceHistory()
        history.append(self._record(1, 0.1))
        history.append(self._record(2, 0.2))
        assert len(history) == 2
        assert history[1].x_norm == 0.2
        assert history.iterations == 2
        assert history.final_x_norm() == 0.2
        assert history.x_norms() == [0.1, 0.2]
        assert history.update_counts() == [2, 2]

    def test_empty_history(self):
        history = ConvergenceHistory()
        assert history.final_x_norm() == 0.0
        assert list(history) == []

    def test_as_rows(self):
        history = ConvergenceHistory()
        history.append(self._record(1, 0.1))
        rows = history.as_rows()
        assert rows[0]["iteration"] == 1
        assert "x_norm" in rows[0]


class TestOracleCounters:
    def test_merge(self):
        a = OracleCounters(calls=1, matvecs=10)
        b = OracleCounters(calls=2, matvecs=5, flops_estimate=100.0)
        b.add("custom", 3.0)
        a.merge(b)
        assert a.calls == 3
        assert a.matvecs == 15
        assert a.flops_estimate == 100.0
        assert a.extra["custom"] == 3.0

    def test_as_dict_contains_extras(self):
        counters = OracleCounters()
        counters.record_call()
        counters.add("norm_estimates")
        payload = counters.as_dict()
        assert payload["calls"] == 1.0
        assert payload["norm_estimates"] == 1.0


class TestExperimentReport:
    def test_add_rows_and_render(self):
        report = ExperimentReport("E0", "smoke experiment")
        report.add_row(n=4, iterations=10, value=1.5)
        report.add_row(n=8, iterations=20, value=2.5, extra="x")
        report.add_note("synthetic data")
        text = report.render()
        assert "E0" in text and "smoke experiment" in text
        assert "iterations" in text
        assert "note: synthetic data" in text

    def test_headers_union_preserves_order(self):
        report = ExperimentReport("E0", "t")
        report.add_row(a=1)
        report.add_row(b=2, a=3)
        assert report.headers() == ["a", "b"]

    def test_column_extraction(self):
        report = ExperimentReport("E0", "t")
        report.add_row(a=1)
        report.add_row(b=2)
        assert report.column("a") == [1, None]

    def test_to_csv(self, tmp_path):
        report = ExperimentReport("E99", "csv test")
        report.add_row(x=1, y=2.5)
        path = report.to_csv(tmp_path)
        content = open(path).read()
        assert "x,y" in content
        assert "1,2.5" in content

    def test_combine(self):
        a = ExperimentReport("E1", "first")
        a.add_row(v=1)
        b = ExperimentReport("E2", "second")
        b.add_row(v=2)
        combined = ExperimentReport.combine([a, b])
        assert "E1" in combined and "E2" in combined
