"""Tests for repro.core.normalize (Appendix A transformation, Lemma 2.2 trace cap)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidProblemError
from repro.linalg.psd import random_psd
from repro.operators.collection import ConstraintCollection
from repro.operators.factorized import FactorizedPSDOperator
from repro.core.normalize import apply_trace_cap, normalize_sdp
from repro.core.problem import PositiveSDP
from repro.baselines.exact import exact_packing_value


def _general_problem(rng, n=3, m=4, identity_objective=False):
    constraints = [random_psd(m, rng=rng, scale=float(rng.uniform(0.5, 2.0))) for _ in range(n)]
    if identity_objective:
        objective = np.eye(m)
    else:
        objective = random_psd(m, rng=rng, spectrum=rng.uniform(0.5, 2.0, size=m), scale=2.0)
    rhs = rng.uniform(0.5, 2.0, size=n)
    return PositiveSDP(objective, constraints, rhs, name="general")


class TestNormalizeSDP:
    def test_identity_objective_unit_rhs_is_noop(self, rng):
        constraints = [random_psd(4, rng=rng) for _ in range(3)]
        problem = PositiveSDP(np.eye(4), constraints, np.ones(3))
        normalized, mapping = normalize_sdp(problem)
        for original, op in zip(constraints, normalized.constraints):
            np.testing.assert_allclose(op.to_dense(), original, atol=1e-9)
        np.testing.assert_allclose(mapping.c_inv_sqrt, np.eye(4), atol=1e-9)

    def test_rhs_scaling(self, rng):
        constraint = random_psd(3, rng=rng)
        problem = PositiveSDP(np.eye(3), [constraint], [2.0])
        normalized, _ = normalize_sdp(problem)
        np.testing.assert_allclose(normalized.constraints[0].to_dense(), constraint / 2.0, atol=1e-10)

    def test_normalized_matrices_formula(self, rng):
        problem = _general_problem(rng)
        normalized, mapping = normalize_sdp(problem)
        c_inv_sqrt = mapping.c_inv_sqrt
        for idx, op in enumerate(normalized.constraints):
            expected = c_inv_sqrt @ problem.constraints[idx].to_dense() @ c_inv_sqrt / problem.rhs[idx]
            np.testing.assert_allclose(op.to_dense(), expected, atol=1e-9)

    def test_zero_rhs_constraints_dropped(self, rng):
        constraints = [random_psd(3, rng=rng) for _ in range(3)]
        problem = PositiveSDP(np.eye(3), constraints, [1.0, 0.0, 2.0])
        normalized, mapping = normalize_sdp(problem)
        assert normalized.num_constraints == 2
        assert mapping.dropped_zero_rhs == [1]

    def test_all_zero_rhs_rejected(self, rng):
        problem = PositiveSDP(np.eye(3), [random_psd(3, rng=rng)], [0.0])
        with pytest.raises(InvalidProblemError):
            normalize_sdp(problem)

    def test_factorized_constraints_stay_factorized(self, rng):
        factor = rng.standard_normal((4, 2))
        problem = PositiveSDP(
            np.eye(4) * 2.0, [FactorizedPSDOperator(factor)], [1.5], validate=False
        )
        normalized, _ = normalize_sdp(problem)
        op = normalized.constraints[0]
        assert isinstance(op, FactorizedPSDOperator)
        expected = (factor @ factor.T) / (2.0 * 1.5)
        np.testing.assert_allclose(op.to_dense(), expected, atol=1e-9)

    def test_primal_roundtrip(self, rng):
        problem = _general_problem(rng)
        _, mapping = normalize_sdp(problem)
        z = random_psd(4, rng=rng)
        back = mapping.primal_from_original(mapping.primal_to_original(z))
        np.testing.assert_allclose(back, z, atol=1e-8)

    def test_dual_mapping_divides_by_rhs(self, rng):
        problem = _general_problem(rng)
        _, mapping = normalize_sdp(problem)
        x = np.abs(rng.uniform(0.1, 1.0, size=3))
        original = mapping.dual_to_original(x)
        np.testing.assert_allclose(original, x / problem.rhs, atol=1e-12)

    def test_dual_mapping_wrong_length(self, rng):
        problem = _general_problem(rng)
        _, mapping = normalize_sdp(problem)
        with pytest.raises(InvalidProblemError):
            mapping.dual_to_original(np.ones(5))

    def test_normalization_preserves_optimum(self, rng):
        """The packing optimum is invariant under the Appendix A transform
        when the objective is the identity (where both forms coincide)."""
        problem = _general_problem(rng, identity_objective=True)
        normalized, _ = normalize_sdp(problem)
        # With C = I the normalized constraints are A_i / b_i; the packing
        # optimum of the normalized program equals that of constraints
        # {A_i / b_i} directly.
        direct = ConstraintCollection(
            [op.to_dense() / b for op, b in zip(problem.constraints, problem.rhs)], validate=False
        )
        val_direct = exact_packing_value(direct).value
        val_normalized = exact_packing_value(normalized.constraints).value
        assert val_normalized == pytest.approx(val_direct, rel=1e-3)


class TestTraceCap:
    def test_no_drop_when_under_cap(self, small_collection):
        result = apply_trace_cap(small_collection)
        assert result.dropped_indices == []
        assert result.constraints is small_collection

    def test_drops_large_trace_constraints(self, rng):
        small = random_psd(3, rng=rng)
        huge = random_psd(3, rng=rng, scale=1e7)
        collection = ConstraintCollection([small, huge], validate=False)
        result = apply_trace_cap(collection, trace_cap=100.0)
        assert result.dropped_indices == [1]
        assert len(result.constraints) == 1

    def test_default_cap_is_n_cubed(self, small_collection):
        result = apply_trace_cap(small_collection)
        assert result.trace_cap == pytest.approx(len(small_collection) ** 3)

    def test_all_dropped_rejected(self, rng):
        huge = random_psd(3, rng=rng, scale=1e6)
        with pytest.raises(InvalidProblemError):
            apply_trace_cap(ConstraintCollection([huge], validate=False), trace_cap=1.0)

    def test_invalid_cap(self, small_collection):
        with pytest.raises(InvalidProblemError):
            apply_trace_cap(small_collection, trace_cap=0.0)
