"""Tests for repro.linalg.expm (exact matrix exponential primitives)."""

from __future__ import annotations

import numpy as np
import pytest
import scipy.linalg
from hypothesis import given, settings, strategies as st

from repro.linalg.expm import (
    expm_dot,
    expm_dot_many,
    expm_eigh,
    expm_normalized,
    expm_psd,
    expm_trace,
)
from repro.linalg.psd import random_psd


class TestExpmEigh:
    def test_matches_scipy(self, small_psd):
        np.testing.assert_allclose(expm_eigh(small_psd), scipy.linalg.expm(small_psd), atol=1e-9)

    def test_zero_matrix_gives_identity(self):
        np.testing.assert_allclose(expm_eigh(np.zeros((3, 3))), np.eye(3), atol=1e-12)

    def test_diagonal_matrix(self):
        mat = np.diag([0.0, 1.0, 2.0])
        np.testing.assert_allclose(expm_eigh(mat), np.diag(np.exp([0.0, 1.0, 2.0])), atol=1e-12)

    def test_output_symmetric(self, small_psd):
        out = expm_eigh(small_psd)
        np.testing.assert_array_equal(out, out.T)

    def test_negative_definite_allowed(self):
        mat = -np.diag([1.0, 2.0])
        np.testing.assert_allclose(expm_eigh(mat), np.diag(np.exp([-1.0, -2.0])), atol=1e-12)


class TestExpmPsdShift:
    def test_shift_representation_consistent(self, small_psd):
        plain = expm_eigh(small_psd)
        shifted, log_scale = expm_psd(small_psd, shift=True)
        np.testing.assert_allclose(np.exp(log_scale) * shifted, plain, atol=1e-9)

    def test_no_shift(self, small_psd):
        mat, log_scale = expm_psd(small_psd, shift=False)
        assert log_scale == 0.0
        np.testing.assert_allclose(mat, expm_eigh(small_psd), atol=1e-12)

    def test_shifted_norm_is_one(self, small_psd):
        shifted, _ = expm_psd(4.0 * small_psd, shift=True)
        assert np.linalg.eigvalsh(shifted)[-1] == pytest.approx(1.0, abs=1e-10)


class TestExpmTrace:
    def test_trace_matches_direct(self, small_psd):
        t, log_scale = expm_trace(small_psd)
        direct = np.trace(expm_eigh(small_psd))
        assert np.exp(log_scale) * t == pytest.approx(direct, rel=1e-10)

    def test_huge_exponent_no_overflow(self):
        mat = np.diag([800.0, 1.0, 0.0])
        t, log_scale = expm_trace(mat)
        assert np.isfinite(t)
        assert log_scale == pytest.approx(800.0)


class TestExpmNormalized:
    def test_unit_trace(self, small_psd):
        density = expm_normalized(small_psd)
        assert np.trace(density) == pytest.approx(1.0, abs=1e-12)

    def test_matches_direct_normalization(self, small_psd):
        direct = expm_eigh(small_psd)
        direct /= np.trace(direct)
        np.testing.assert_allclose(expm_normalized(small_psd), direct, atol=1e-10)

    def test_large_exponent_stays_finite(self):
        mat = np.diag([750.0, 740.0, 0.0])
        density = expm_normalized(mat)
        assert np.all(np.isfinite(density))
        assert np.trace(density) == pytest.approx(1.0, abs=1e-12)

    def test_zero_matrix_gives_uniform(self):
        np.testing.assert_allclose(expm_normalized(np.zeros((4, 4))), np.eye(4) / 4, atol=1e-12)


class TestExpmDot:
    def test_matches_definition(self, small_psd, rng):
        a = random_psd(5, rng=rng)
        expected = float(np.sum(expm_eigh(small_psd) * a))
        assert expm_dot(small_psd, a) == pytest.approx(expected, rel=1e-10)

    def test_normalized_variant(self, small_psd, rng):
        a = random_psd(5, rng=rng)
        expected = float(np.sum(expm_normalized(small_psd) * a))
        assert expm_dot(small_psd, a, normalized=True) == pytest.approx(expected, rel=1e-10)

    def test_shape_mismatch(self, small_psd):
        with pytest.raises(ValueError):
            expm_dot(small_psd, np.eye(3))

    def test_dot_many_matches_individual(self, small_psd, rng):
        mats = [random_psd(5, rng=rng) for _ in range(3)]
        batch = expm_dot_many(small_psd, mats, normalized=True)
        for value, mat in zip(batch, mats):
            assert value == pytest.approx(expm_dot(small_psd, mat, normalized=True), rel=1e-10)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(min_value=0, max_value=9999), scale=st.floats(min_value=0.1, max_value=5.0))
def test_expm_monotone_trace_property(seed, scale):
    """Property: Tr[exp(c*A)] is finite, >= dim, and the density has unit trace."""
    mat = scale * random_psd(4, rng=seed)
    t, log_scale = expm_trace(mat)
    assert np.exp(log_scale) * t >= 4.0 - 1e-9  # exp of PSD has eigenvalues >= 1
    density = expm_normalized(mat)
    assert np.trace(density) == pytest.approx(1.0, abs=1e-10)
    assert np.all(np.linalg.eigvalsh(density) >= -1e-12)
