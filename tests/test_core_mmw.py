"""Tests for the matrix multiplicative weights engine (Theorem 2.1)."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import InvalidProblemError
from repro.linalg.psd import random_psd
from repro.core.mmw import MatrixMultiplicativeWeights


class TestConstruction:
    def test_invalid_eps0(self):
        with pytest.raises(InvalidProblemError):
            MatrixMultiplicativeWeights(3, 0.6)
        with pytest.raises(InvalidProblemError):
            MatrixMultiplicativeWeights(3, 0.0)

    def test_invalid_dim(self):
        with pytest.raises(InvalidProblemError):
            MatrixMultiplicativeWeights(0, 0.1)

    def test_initial_probability_is_uniform(self):
        mmw = MatrixMultiplicativeWeights(4, 0.25)
        np.testing.assert_allclose(mmw.probability_matrix(), np.eye(4) / 4, atol=1e-12)


class TestUpdates:
    def test_update_returns_dot_before_update(self, rng):
        mmw = MatrixMultiplicativeWeights(4, 0.3)
        gain = random_psd(4, rng=rng, scale=0.8)
        expected = float(np.sum(gain * mmw.probability_matrix()))
        assert mmw.update(gain) == pytest.approx(expected, rel=1e-10)
        assert mmw.rounds == 1

    def test_gain_shape_checked(self):
        mmw = MatrixMultiplicativeWeights(3, 0.2)
        with pytest.raises(InvalidProblemError):
            mmw.update(np.eye(4))

    def test_gain_psd_checked(self):
        mmw = MatrixMultiplicativeWeights(2, 0.2)
        with pytest.raises(InvalidProblemError):
            mmw.update(np.diag([1.0, -0.5]))

    def test_gain_bounded_by_identity_checked(self):
        mmw = MatrixMultiplicativeWeights(2, 0.2)
        with pytest.raises(InvalidProblemError):
            mmw.update(np.diag([2.0, 0.5]))

    def test_validation_can_be_disabled(self):
        mmw = MatrixMultiplicativeWeights(2, 0.2, validate_gains=False)
        mmw.update(np.diag([2.0, 0.5]))  # no exception
        assert mmw.rounds == 1

    def test_probability_follows_heavy_gain_direction(self):
        """Repeated gains on one coordinate concentrate the density there."""
        mmw = MatrixMultiplicativeWeights(3, 0.5)
        gain = np.diag([1.0, 0.0, 0.0])
        for _ in range(40):
            mmw.update(gain)
        prob = mmw.probability_matrix()
        assert prob[0, 0] > 0.99

    def test_gain_sum_accumulates(self, rng):
        mmw = MatrixMultiplicativeWeights(3, 0.2)
        gains = [random_psd(3, rng=rng, scale=0.5) for _ in range(3)]
        for gain in gains:
            mmw.update(gain)
        np.testing.assert_allclose(mmw.gain_sum(), sum(gains), atol=1e-10)


class TestRegretBound:
    def test_regret_bound_adversarial_sequence(self, rng):
        """Theorem 2.1 holds for arbitrary PSD gains bounded by I."""
        mmw = MatrixMultiplicativeWeights(5, 0.4)
        for t in range(60):
            gain = random_psd(5, rng=rng, scale=float(rng.uniform(0.2, 1.0)))
            mmw.update(gain)
        assert mmw.regret_bound_satisfied()
        assert mmw.regret_gap() >= -1e-7

    def test_regret_bound_single_direction(self):
        mmw = MatrixMultiplicativeWeights(4, 0.25)
        gain = np.zeros((4, 4))
        gain[1, 1] = 1.0
        for _ in range(100):
            mmw.update(gain)
        assert mmw.regret_bound_satisfied()

    def test_regret_zero_rounds(self):
        mmw = MatrixMultiplicativeWeights(3, 0.1)
        assert mmw.lambda_max_gain_sum() == 0.0
        assert mmw.regret_bound_satisfied()


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(min_value=0, max_value=9999),
    eps0=st.floats(min_value=0.05, max_value=0.5),
    rounds=st.integers(min_value=1, max_value=30),
)
def test_regret_bound_property(seed, eps0, rounds):
    """Property: the Theorem 2.1 inequality holds for random gain sequences."""
    rng = np.random.default_rng(seed)
    dim = 4
    mmw = MatrixMultiplicativeWeights(dim, eps0, validate_gains=False)
    for _ in range(rounds):
        gain = random_psd(dim, rng=rng, scale=float(rng.uniform(0.1, 1.0)))
        mmw.update(gain)
    lhs = (1.0 + eps0) * mmw.total_gain_dot_probability()
    rhs = mmw.lambda_max_gain_sum() - np.log(dim) / eps0
    assert lhs >= rhs - 1e-6
