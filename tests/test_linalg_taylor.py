"""Tests for repro.linalg.taylor (Lemma 4.2 truncated exponentials)."""

from __future__ import annotations

import math

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.exceptions import NumericalError
from repro.linalg.expm import expm_eigh
from repro.linalg.psd import is_psd, random_psd
from repro.linalg.taylor import (
    TaylorExpmOperator,
    taylor_degree,
    taylor_expm_apply,
    taylor_expm_matrix,
)


class TestTaylorDegree:
    def test_matches_lemma_formula(self):
        kappa, eps = 3.0, 0.1
        expected = math.ceil(max(math.e**2 * kappa, math.log(2.0 / eps)))
        assert taylor_degree(kappa, eps) == expected

    def test_small_kappa_floor(self):
        # kappa below 1 is clamped to 1 inside the rule.
        assert taylor_degree(0.0, 0.5) == math.ceil(math.e**2)

    def test_eps_dominates_for_tiny_eps(self):
        assert taylor_degree(0.0, 1e-9) >= math.log(2e9) - 1

    def test_invalid_eps(self):
        with pytest.raises(ValueError):
            taylor_degree(1.0, 0.0)
        with pytest.raises(ValueError):
            taylor_degree(1.0, 1.0)

    def test_invalid_kappa(self):
        with pytest.raises(ValueError):
            taylor_degree(-1.0, 0.5)


class TestTaylorApply:
    def test_matrix_matches_expm_at_high_degree(self, small_psd):
        approx = taylor_expm_matrix(small_psd, degree=40)
        np.testing.assert_allclose(approx, expm_eigh(small_psd), atol=1e-8)

    def test_vector_apply_matches_matrix(self, small_psd, rng):
        vec = rng.standard_normal(5)
        full = taylor_expm_matrix(small_psd, degree=15)
        np.testing.assert_allclose(taylor_expm_apply(small_psd, vec, 15), full @ vec, atol=1e-9)

    def test_block_apply_matches_columns(self, small_psd, rng):
        block = rng.standard_normal((5, 3))
        out = taylor_expm_apply(small_psd, block, 12)
        for j in range(3):
            np.testing.assert_allclose(out[:, j], taylor_expm_apply(small_psd, block[:, j], 12), atol=1e-10)

    def test_degree_one_is_identity(self, small_psd, rng):
        vec = rng.standard_normal(5)
        np.testing.assert_allclose(taylor_expm_apply(small_psd, vec, 1), vec)

    def test_invalid_degree(self, small_psd):
        with pytest.raises(ValueError):
            taylor_expm_apply(small_psd, np.ones(5), 0)

    def test_sparse_input(self, rng):
        import scipy.sparse as sp

        dense = random_psd(6, rng=rng)
        sparse = sp.csr_matrix(dense)
        vec = rng.standard_normal(6)
        np.testing.assert_allclose(
            taylor_expm_apply(sparse, vec, 20), taylor_expm_apply(dense, vec, 20), atol=1e-10
        )

    def test_overflow_detection(self):
        mat = np.diag([400.0, 0.0])
        with pytest.raises(NumericalError):
            # Astronomically large intermediate terms must be flagged, not returned.
            taylor_expm_apply(mat * 10, np.ones(2) * 1e300, 50)


class TestLemma42Guarantee:
    @pytest.mark.parametrize("eps", [0.3, 0.1, 0.05])
    def test_one_sided_sandwich(self, rng, eps):
        """(1 - eps) exp(B) <= B_hat <= exp(B) in the Loewner order (Lemma 4.2)."""
        kappa = 2.0
        mat = random_psd(6, rng=rng, scale=kappa)
        degree = taylor_degree(kappa, eps)
        approx = taylor_expm_matrix(mat, degree)
        exact = expm_eigh(mat)
        assert is_psd(exact - approx, tol=1e-9)
        assert is_psd(approx - (1 - eps) * exact, tol=1e-9)


class TestTaylorExpmOperator:
    def test_quadratic_form_approximates_exp_dot(self, rng):
        mat = random_psd(6, rng=rng, scale=2.0)
        q = rng.standard_normal((6, 2))
        op = TaylorExpmOperator(mat, kappa=2.0, eps=0.01)
        exact = float(np.sum(expm_eigh(mat) * (q @ q.T)))
        assert op.quadratic_form(q) == pytest.approx(exact, rel=0.02)

    def test_matvec_counter_increments(self, rng):
        mat = random_psd(4, rng=rng)
        op = TaylorExpmOperator(mat, kappa=1.0, eps=0.1)
        before = op.matvec_count
        op.apply(np.ones(4))
        assert op.matvec_count == before + (op.degree - 1)

    def test_callable_requires_dim(self):
        with pytest.raises(ValueError):
            TaylorExpmOperator(lambda v: v, kappa=1.0, eps=0.1)

    def test_negative_kappa_rejected(self, small_psd):
        with pytest.raises(ValueError):
            TaylorExpmOperator(small_psd, kappa=-1.0, eps=0.1)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(min_value=0, max_value=9999), eps=st.floats(min_value=0.05, max_value=0.5))
def test_taylor_underestimates_trace_property(seed, eps):
    """Property: the Lemma 4.2 polynomial never exceeds the true exponential trace."""
    mat = random_psd(5, rng=seed, scale=1.5)
    degree = taylor_degree(1.5, eps)
    approx_trace = float(np.trace(taylor_expm_matrix(mat, degree)))
    exact_trace = float(np.trace(expm_eigh(mat)))
    assert approx_trace <= exact_trace + 1e-9
    assert approx_trace >= (1 - eps) * exact_trace - 1e-9
