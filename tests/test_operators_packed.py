"""Packed Gram-factor fast path: equivalence against the reference loops.

Every packed primitive must reproduce the per-constraint reference
implementation to tight tolerance across dense / sparse / diagonal /
low-rank operator mixes — the packing is a wall-clock optimisation, not an
approximation.
"""

from __future__ import annotations

import numpy as np
import pytest
import scipy.sparse as sp

from repro.exceptions import InvalidProblemError
from repro.linalg.psd import random_psd
from repro.operators import (
    ConstraintCollection,
    DensePSDOperator,
    DiagonalPSDOperator,
    FactorizedPSDOperator,
    LowRankPSDOperator,
    PackedGramFactors,
)
from repro.operators.packed import segment_sums
from repro.core.dotexp import FastDotExpOracle, big_dot_exp


def _mixed_operators(rng, m, kind):
    """Constraint mixes exercising every operator representation."""
    if kind == "dense":
        return [DensePSDOperator(random_psd(m, rng=rng, scale=s)) for s in (0.5, 1.0, 2.0)]
    if kind == "sparse":
        ops = []
        for i in range(4):
            factor = sp.random(m, 3, density=0.3, random_state=int(rng.integers(1 << 31)))
            ops.append(FactorizedPSDOperator(sp.csr_matrix(factor)))
        return ops
    if kind == "diagonal":
        return [DiagonalPSDOperator(rng.random(m) + 0.1) for _ in range(3)]
    if kind == "lowrank":
        return [
            LowRankPSDOperator(rng.standard_normal((m, 2)), rng.random(2) + 0.1)
            for _ in range(4)
        ]
    if kind == "mixed":
        return [
            DensePSDOperator(random_psd(m, rng=rng)),
            FactorizedPSDOperator(rng.standard_normal((m, 2))),
            FactorizedPSDOperator(sp.csr_matrix(sp.random(m, 2, density=0.4, random_state=3))),
            DiagonalPSDOperator(rng.random(m) + 0.1),
            LowRankPSDOperator(rng.standard_normal((m, 3))),
        ]
    raise AssertionError(kind)


MIX_KINDS = ["dense", "sparse", "diagonal", "lowrank", "mixed"]


@pytest.fixture(params=MIX_KINDS)
def mix(request, rng):
    m = 9
    ops = _mixed_operators(rng, m, request.param)
    return ConstraintCollection(ops), ops, m


class TestPackedPrimitives:
    def test_weighted_sum_matches_reference(self, mix, rng):
        coll, ops, m = mix
        packed = coll.packed()
        weights = rng.random(len(ops))
        reference = np.zeros((m, m))
        for w, op in zip(weights, ops):
            op.add_to(reference, float(w))
        reference = 0.5 * (reference + reference.T)
        np.testing.assert_allclose(packed.weighted_sum(weights), reference, atol=1e-10)

    def test_weighted_sum_active_columns_only(self, mix, rng):
        coll, ops, m = mix
        packed = coll.packed()
        weights = np.zeros(len(ops))
        weights[0] = 0.7
        np.testing.assert_allclose(
            packed.weighted_sum(weights), 0.7 * ops[0].to_dense(), atol=1e-10
        )
        assert np.all(packed.weighted_sum(np.zeros(len(ops))) == 0.0)

    def test_dots_matches_reference(self, mix, rng):
        coll, ops, m = mix
        packed = coll.packed()
        weight_matrix = random_psd(m, rng=rng)
        reference = np.array([op.dot(weight_matrix) for op in ops])
        np.testing.assert_allclose(packed.dots(weight_matrix), reference, atol=1e-10)

    def test_traces_matches_reference(self, mix):
        coll, ops, m = mix
        packed = coll.packed()
        reference = np.array([op.trace() for op in ops])
        np.testing.assert_allclose(packed.traces(), reference, atol=1e-10)

    def test_matvec_matches_reference(self, mix, rng):
        coll, ops, m = mix
        packed = coll.packed()
        weights = rng.random(len(ops))
        block = rng.standard_normal((m, 3))
        reference = np.zeros_like(block)
        for w, op in zip(weights, ops):
            reference += w * op.matvec(block)
        np.testing.assert_allclose(packed.matvec(weights, block), reference, atol=1e-10)
        np.testing.assert_allclose(
            packed.matvec_fn(weights)(block[:, 0]), reference[:, 0], atol=1e-10
        )

    def test_big_dot_exp_no_sketch_matches_reference(self, mix):
        coll, ops, m = mix
        phi = coll.weighted_sum(np.full(len(ops), 1.0 / len(ops)))
        reference = big_dot_exp(phi, coll.gram_factors(), kappa=2.0, eps=0.1, use_sketch=False)
        packed_vals = big_dot_exp(phi, coll.packed(), kappa=2.0, eps=0.1, use_sketch=False)
        np.testing.assert_allclose(packed_vals, reference, rtol=1e-10, atol=1e-10)


class TestPackedStructure:
    def test_offsets_and_factor_blocks(self, rng):
        factors = [rng.standard_normal((5, r)) for r in (1, 3, 2)]
        packed = PackedGramFactors(factors)
        assert packed.total_rank == 6
        assert list(packed.offsets) == [0, 1, 4, 6]
        for i, factor in enumerate(factors):
            np.testing.assert_array_equal(np.asarray(packed.factor(i)), factor)

    def test_one_dimensional_factor_treated_as_column(self, rng):
        packed = PackedGramFactors([rng.standard_normal(5)])
        assert packed.total_rank == 1

    def test_dimension_mismatch_rejected(self, rng):
        with pytest.raises(InvalidProblemError):
            PackedGramFactors([rng.standard_normal((4, 2)), rng.standard_normal((5, 2))])

    def test_empty_rejected(self):
        with pytest.raises(InvalidProblemError):
            PackedGramFactors([])

    def test_weight_validation(self, rng):
        packed = PackedGramFactors([rng.standard_normal((4, 2)) for _ in range(3)])
        with pytest.raises(InvalidProblemError):
            packed.expand_weights(np.ones(2))
        with pytest.raises(InvalidProblemError):
            packed.expand_weights(np.array([1.0, -0.5, 1.0]))

    def test_rank_zero_blocks_sum_to_zero(self, rng):
        """Empty column blocks must yield 0, not np.add.reduceat's silent
        neighbour-value artefact."""
        factors = [
            rng.standard_normal((4, 2)),
            np.zeros((4, 0)),
            rng.standard_normal((4, 1)),
        ]
        packed = PackedGramFactors(factors)
        traces = packed.traces()
        assert traces[1] == 0.0
        assert traces[0] == pytest.approx(float(np.sum(factors[0] ** 2)))
        assert traces[2] == pytest.approx(float(np.sum(factors[2] ** 2)))

    def test_segment_sums_empty_segments(self):
        values = np.array([1.0, 2.0, 3.0])
        offsets = np.array([0, 2, 2, 3])
        np.testing.assert_allclose(segment_sums(values, offsets), [3.0, 0.0, 3.0])

    def test_diagonal_collections_pack_sparsely(self, rng):
        """n diagonal constraints must pack to O(n m) stored entries via the
        sparse diag factor, not n dense (m, m) eye-like blocks."""
        m, n = 40, 15
        coll = ConstraintCollection([DiagonalPSDOperator(rng.random(m) + 0.1) for _ in range(n)])
        packed = coll.packed()
        assert packed.is_sparse
        assert packed.nnz <= n * m
        np.testing.assert_allclose(
            packed.traces(), np.array([op.trace() for op in coll]), atol=1e-10
        )
        weights = rng.random(n)
        reference = np.zeros((m, m))
        for w, op in zip(weights, coll):
            op.add_to(reference, float(w))
        np.testing.assert_allclose(packed.weighted_sum(weights), reference, atol=1e-10)

    def test_packed_factor_passes_match_reference_semantics(self, rng):
        """Counter reports must stay comparable across packed=True/False."""
        from repro.instrumentation.counters import OracleCounters

        factors = [rng.standard_normal((6, 2)) for _ in range(4)]
        phi = np.eye(6)
        for use_sketch in (True, False):
            ref_counters, packed_counters = OracleCounters(), OracleCounters()
            big_dot_exp(phi, factors, kappa=1.0, eps=0.1, rng=1,
                        use_sketch=use_sketch, counters=ref_counters, return_trace=True)
            big_dot_exp(phi, PackedGramFactors(factors), kappa=1.0, eps=0.1, rng=1,
                        use_sketch=use_sketch, counters=packed_counters, return_trace=True)
            assert packed_counters.factor_passes == ref_counters.factor_passes == 5

    def test_sparse_packing_keeps_sparse_storage(self, rng):
        factors = [sp.random(50, 2, density=0.02, random_state=i, format="csr") for i in range(4)]
        packed = PackedGramFactors(factors)
        assert packed.is_sparse
        dense_packed = PackedGramFactors([f.toarray() for f in factors])
        assert not dense_packed.is_sparse
        np.testing.assert_allclose(packed.traces(), dense_packed.traces(), atol=1e-12)

    def test_collection_caches_packed_view(self, rng):
        coll = ConstraintCollection([FactorizedPSDOperator(rng.standard_normal((5, 2)))])
        assert coll.packed_view is None
        packed = coll.packed()
        assert coll.packed_view is packed
        assert coll.packed() is packed

    def test_exact_factor_collections_reroute(self, rng):
        coll = ConstraintCollection(
            [FactorizedPSDOperator(rng.standard_normal((5, 2))) for _ in range(3)]
        )
        coll.packed()
        assert coll.packed_fast_path is not None

    def test_dense_collections_never_reroute_reference_ops(self, rng):
        """Dense operators' eigh-derived factors are approximate, so the
        packed view must not silently replace weighted_sum/dots/traces."""
        mats = [random_psd(5, rng=rng, scale=s) for s in (0.5, 1.5)]
        coll = ConstraintCollection([DensePSDOperator(m) for m in mats])
        before = coll.weighted_sum(np.array([0.3, 0.7]))
        coll.packed()  # the fast oracle may still build/use the view...
        assert coll.packed_view is not None
        assert coll.packed_fast_path is None  # ...but reference ops keep the loop
        after = coll.weighted_sum(np.array([0.3, 0.7]))
        np.testing.assert_array_equal(before, after)


class TestPackedOracle:
    def _collection(self, rng, m=10, n=6):
        return ConstraintCollection(
            [FactorizedPSDOperator(0.4 * rng.standard_normal((m, 2))) for _ in range(n)]
        )

    def test_packed_oracle_matches_seed_loop(self, rng):
        coll_packed = self._collection(np.random.default_rng(11))
        coll_seed = self._collection(np.random.default_rng(11))
        x = np.abs(rng.random(len(coll_packed))) / len(coll_packed)
        psi = coll_seed.weighted_sum(x)
        out_packed = FastDotExpOracle(coll_packed, eps=0.1, rng=5, packed=True)(psi, x)
        out_seed = FastDotExpOracle(coll_seed, eps=0.1, rng=5, packed=False)(psi, x)
        np.testing.assert_allclose(out_packed.values, out_seed.values, rtol=1e-6)
        assert out_packed.trace > 0 and out_seed.trace > 0

    def test_packed_oracle_builds_collection_view(self, rng):
        coll = self._collection(rng)
        oracle = FastDotExpOracle(coll, eps=0.1, rng=5, packed=True)
        assert oracle.packed is coll.packed_view

    def test_big_dot_exp_return_trace_packed_vs_sequence(self, rng):
        coll = self._collection(rng)
        phi = coll.weighted_sum(np.full(len(coll), 0.2))
        vals_p, trace_p = big_dot_exp(
            phi, coll.packed(), kappa=2.0, eps=0.1, rng=3, return_trace=True
        )
        vals_s, trace_s = big_dot_exp(
            phi, coll.gram_factors(), kappa=2.0, eps=0.1, rng=3, return_trace=True
        )
        np.testing.assert_allclose(vals_p, vals_s, rtol=1e-8)
        assert trace_p == pytest.approx(trace_s, rel=1e-8)

    def test_big_dot_exp_return_trace_no_sketch(self, rng):
        coll = self._collection(rng)
        phi = coll.weighted_sum(np.full(len(coll), 0.2))
        vals, trace = big_dot_exp(
            phi, coll.packed(), kappa=2.0, eps=0.05, use_sketch=False, return_trace=True
        )
        from repro.linalg.expm import expm_eigh

        exact_trace = float(np.trace(expm_eigh(phi)))
        assert trace == pytest.approx(exact_trace, rel=0.06)
        assert trace <= exact_trace + 1e-8


class TestZeroRankStacks:
    """Offset bookkeeping for rank-zero blocks and fully empty stacks.

    These paths were previously only exercised implicitly; every primitive
    must degrade to exact zeros / identity behaviour, dense and sparse.
    """

    def _empty(self, sparse):
        blocks = (
            [sp.csr_matrix((4, 0)), sp.csr_matrix((4, 0))]
            if sparse
            else [np.zeros((4, 0)), np.zeros((4, 0))]
        )
        return PackedGramFactors(blocks)

    @pytest.mark.parametrize("sparse", [False, True])
    def test_empty_stack_primitives(self, sparse):
        packed = self._empty(sparse)
        assert packed.total_rank == 0
        assert packed.nnz == 0
        assert packed.expand_weights(np.zeros(2)).shape == (0,)
        np.testing.assert_array_equal(packed.traces(), np.zeros(2))
        np.testing.assert_array_equal(packed.dots(np.eye(4)), np.zeros(2))
        np.testing.assert_array_equal(
            packed.weighted_sum(np.ones(2)), np.zeros((4, 4))
        )
        np.testing.assert_array_equal(
            packed.matvec(np.ones(2), np.ones((4, 3))), np.zeros((4, 3))
        )
        np.testing.assert_array_equal(
            packed.matvec_fn(np.ones(2))(np.ones(4)), np.zeros(4)
        )
        np.testing.assert_array_equal(
            packed.estimates_from_transform(np.ones((3, 4))), np.zeros(2)
        )
        assert packed.dense_columns().shape == (4, 0)
        assert packed.psi_nnz_bound() == 0
        assert packed.gram_matrix().shape == (0, 0)

    @pytest.mark.parametrize("sparse", [False, True])
    def test_empty_stack_taylor_kernel_is_identity(self, sparse):
        packed = self._empty(sparse)
        block = np.random.default_rng(70).standard_normal((4, 3))
        np.testing.assert_array_equal(
            packed.taylor_kernel(np.ones(2)).apply(block, 7), block
        )

    def test_sparse_mixed_zero_rank_blocks(self):
        rng = np.random.default_rng(71)
        blocks = [
            sp.random(30, 3, density=0.1, random_state=rng, format="csr"),
            sp.csr_matrix((30, 0)),
            sp.random(30, 2, density=0.1, random_state=rng, format="csr"),
        ]
        packed = PackedGramFactors(blocks)
        assert packed.is_sparse
        assert list(packed.ranks) == [3, 0, 2]
        traces = packed.traces()
        assert traces[1] == 0.0
        dense = PackedGramFactors([b.toarray() for b in blocks])
        np.testing.assert_allclose(traces, dense.traces(), atol=1e-12)
        np.testing.assert_allclose(
            packed.dots(np.eye(30)), dense.dots(np.eye(30)), atol=1e-12
        )
        assert packed.factor(1).shape == (30, 0)

    def test_segment_sums_accepts_array_likes(self):
        np.testing.assert_allclose(
            segment_sums(np.array([1.0, 2.0, 3.0]), [0, 2, 2, 3]), [3.0, 0.0, 3.0]
        )
        np.testing.assert_allclose(segment_sums([1.0, 2.0], [0, 2]), [3.0])

    def test_segment_sums_rejects_matrix_offsets(self):
        with pytest.raises(InvalidProblemError):
            segment_sums(np.ones(4), np.zeros((2, 2)))

    def test_segment_sums_trailing_empty_segment(self):
        np.testing.assert_allclose(
            segment_sums(np.array([1.0, 2.0, 3.0]), np.array([0, 3, 3])), [6.0, 0.0]
        )

    def test_segment_sums_degenerate_offsets(self):
        assert segment_sums(np.zeros(0), np.array([0])).shape == (0,)
        assert segment_sums(np.zeros(0), np.zeros(0, dtype=np.int64)).shape == (0,)


class TestSparseCSRBranches:
    """The CSR code paths of the packed primitives, on stacks that stay
    sparse (density below the densification threshold)."""

    def _sparse_packed(self, m=60, n=6, rank=3, density=0.05, seed=80):
        rng = np.random.default_rng(seed)
        blocks = []
        for _ in range(n):
            f = sp.random(m, rank, density=density, random_state=rng, format="csr")
            if f.nnz == 0:
                f = sp.csr_matrix(
                    (np.ones(rank), (rng.integers(0, m, rank), np.arange(rank))),
                    shape=(m, rank),
                )
            blocks.append(f)
        packed = PackedGramFactors(blocks)
        assert packed.is_sparse  # the whole point of this fixture
        dense = PackedGramFactors([b.toarray() for b in blocks])
        return packed, dense

    def test_matvec_fn_matches_dense(self, rng):
        packed, dense = self._sparse_packed()
        weights = rng.random(6)
        block = rng.standard_normal((60, 4))
        np.testing.assert_allclose(
            packed.matvec_fn(weights)(block),
            dense.matvec_fn(weights)(block),
            atol=1e-12,
        )
        vec = rng.standard_normal(60)
        np.testing.assert_allclose(
            np.asarray(packed.matvec_fn(weights)(vec)).ravel(),
            dense.matvec_fn(weights)(vec),
            atol=1e-12,
        )

    def test_dots_matches_dense(self, rng):
        packed, dense = self._sparse_packed()
        weight_matrix = random_psd(60, rng=rng)
        np.testing.assert_allclose(
            packed.dots(weight_matrix), dense.dots(weight_matrix), atol=1e-10
        )

    def test_estimates_from_transform_matches_dense(self, rng):
        packed, dense = self._sparse_packed()
        transform = rng.standard_normal((7, 60))
        np.testing.assert_allclose(
            packed.estimates_from_transform(transform),
            dense.estimates_from_transform(transform),
            atol=1e-10,
        )

    def test_weighted_sum_active_subset_matches_dense(self, rng):
        packed, dense = self._sparse_packed()
        weights = np.zeros(6)
        weights[2] = 0.8
        weights[5] = 0.1
        np.testing.assert_allclose(
            packed.weighted_sum(weights), dense.weighted_sum(weights), atol=1e-12
        )

    def test_column_nnz_and_psi_bound(self):
        packed, dense = self._sparse_packed()
        col_nnz = packed.column_nnz()
        assert col_nnz.shape == (packed.total_rank,)
        assert int(col_nnz.sum()) == packed.nnz
        acc = packed.psi_accumulator()
        assert acc.psi_nnz <= packed.psi_nnz_bound()
        # Dense stacks count explicit nonzeros instead of stored entries.
        assert dense.column_nnz().sum() == packed.nnz

    def test_sparse_taylor_kernel_modes_agree(self, rng):
        packed, dense = self._sparse_packed()
        weights = rng.random(6)
        block = rng.standard_normal((60, 5))
        reference = packed.taylor_kernel(weights, mode="legacy").apply(block, 12)
        for mode in ("sparse-psi", "sparse-factors", "dense-psi", "gram"):
            np.testing.assert_allclose(
                packed.taylor_kernel(weights, mode=mode).apply(block, 12),
                reference,
                atol=1e-9,
                err_msg=mode,
            )

    def test_auto_mode_boundaries(self):
        from repro.linalg.taylor_gram import select_taylor_mode

        # 2R == m stays in Gram space; just past the boundary the ~10%
        # hysteresis (GRAM_HYSTERESIS) keeps the Gram path; clearly past it
        # the stack densifies.
        m = 40
        even = PackedGramFactors(
            [np.random.default_rng(81).standard_normal((m, 2)) for _ in range(10)]
        )
        assert 2 * even.total_rank == m
        assert even.auto_taylor_mode() == "gram"
        near = PackedGramFactors(
            [np.random.default_rng(82).standard_normal((m, 3)) for _ in range(7)]
        )
        assert 2 * near.total_rank == m + 2
        assert near.auto_taylor_mode() == "gram"
        past = PackedGramFactors(
            [np.random.default_rng(83).standard_normal((m, 3)) for _ in range(8)]
        )
        assert 2 * past.total_rank == m + 8
        assert past.auto_taylor_mode() == "dense-psi"
        # The sparse decision at the densification threshold matches the
        # pure policy function on the stack's measured quantities.
        packed, _ = self._sparse_packed()
        assert packed.auto_taylor_mode() == select_taylor_mode(
            packed.dim,
            packed.total_rank,
            packed.nnz,
            True,
            psi_nnz=packed.psi_nnz_bound(),
        )
