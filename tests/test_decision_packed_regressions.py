"""Regression tests riding with the packed fast-path PR.

Covers the history-record NaN bug, caller-option mutation, the
top-eigenvalue certificate routine, and the fixed-seed guarantee that the
decision solver certifies the same outcome on the packed and seed oracle
paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.linalg.norms import top_eigenvalue
from repro.linalg.psd import random_psd
from repro.operators import ConstraintCollection, FactorizedPSDOperator
from repro.core.decision import DecisionOptions, decision_psdp
from repro.core.dotexp import FastDotExpOracle
from repro.core.solver import SolverOptions, approx_psdp
from repro.problems.random_instances import random_packing_sdp


def _factorized_collection(seed, m=12, n=8, scale=0.35):
    rng = np.random.default_rng(seed)
    return ConstraintCollection(
        [FactorizedPSDOperator(scale * rng.standard_normal((m, 2))) for _ in range(n)]
    )


class TestHistoryNaNRegression:
    def test_min_max_values_are_finite(self, small_collection):
        result = decision_psdp(
            small_collection, epsilon=0.3, collect_history=True, max_iterations=5
        )
        assert result.history is not None
        assert len(result.history) > 0
        for record in result.history:
            assert np.isfinite(record.min_value)
            assert np.isfinite(record.max_value)
            assert record.min_value <= record.max_value


class TestOptionsNotMutated:
    def test_decision_options_epsilon_preserved(self, small_collection):
        opts = DecisionOptions(epsilon=0.25, max_iterations=4)
        decision_psdp(small_collection, epsilon=0.4, options=opts)
        assert opts.epsilon == 0.25

    def test_solver_options_epsilon_preserved(self, rng):
        problem = random_packing_sdp(3, 4, rng=rng)
        opts = SolverOptions(epsilon=0.5)
        approx_psdp(problem, epsilon=0.3, options=opts)
        assert opts.epsilon == 0.5


class TestTopEigenvalue:
    def test_matches_eigvalsh_small(self, rng):
        mat = random_psd(10, rng=rng, scale=3.0)
        assert top_eigenvalue(mat) == pytest.approx(float(np.linalg.eigvalsh(mat)[-1]))

    def test_matches_eigvalsh_above_cutoff(self, rng):
        mat = random_psd(90, rng=rng, scale=2.0)
        exact = float(np.linalg.eigvalsh(mat)[-1])
        assert top_eigenvalue(mat, rng=rng) == pytest.approx(exact, rel=1e-6)

    def test_matvec_callable(self, rng):
        mat = random_psd(80, rng=rng, scale=1.5)
        exact = float(np.linalg.eigvalsh(mat)[-1])
        est = top_eigenvalue(lambda v: mat @ v, dim=80, rng=rng)
        assert est == pytest.approx(exact, rel=1e-6)

    def test_requires_dim_for_callable(self):
        with pytest.raises(ValueError):
            top_eigenvalue(lambda v: v)

    def test_zero_dimension(self):
        assert top_eigenvalue(np.zeros((0, 0))) == 0.0


class TestPackedDecisionEquivalence:
    def test_same_certified_outcome_fixed_seed(self):
        results = {}
        for packed in (True, False):
            coll = _factorized_collection(20120522)
            oracle = FastDotExpOracle(coll, eps=0.05, rng=99, packed=packed)
            results[packed] = decision_psdp(coll, epsilon=0.2, oracle=oracle, rng=99)
        assert results[True].outcome == results[False].outcome
        assert results[True].iterations == results[False].iterations
        np.testing.assert_allclose(
            results[True].dual_x, results[False].dual_x, rtol=1e-6, atol=1e-12
        )

    def test_fast_oracle_string_uses_packed_view(self):
        coll = _factorized_collection(7)
        assert coll.packed_view is None
        result = decision_psdp(coll, epsilon=0.25, oracle="fast", rng=3, max_iterations=8)
        assert coll.packed_view is not None
        assert result.outcome is not None

    def test_exact_oracle_leaves_collection_unpacked(self, small_collection):
        decision_psdp(small_collection, epsilon=0.3, max_iterations=4)
        assert small_collection.packed_view is None

    def test_history_collection_does_not_perturb_oracle_stream(self):
        """The eigenvalue estimator spawns its own generator, so turning
        history on (which estimates lambda_max every iteration) must not
        change the oracle's sketch draws or the certified outcome."""
        results = {}
        for collect in (True, False):
            coll = _factorized_collection(31)
            oracle = FastDotExpOracle(coll, eps=0.05, rng=np.random.default_rng(5))
            results[collect] = decision_psdp(
                coll, epsilon=0.2, oracle=oracle, rng=np.random.default_rng(5),
                collect_history=collect,
            )
        assert results[True].outcome == results[False].outcome
        assert results[True].iterations == results[False].iterations
        np.testing.assert_array_equal(results[True].dual_x, results[False].dual_x)
