"""Regression tests riding with the packed fast-path and blocked-Taylor PRs.

Covers the history-record NaN bug, caller-option mutation, the
top-eigenvalue certificate routine, and the fixed-seed guarantees that the
decision solver certifies the same outcome on the packed/seed oracle paths,
the blocked/per-term Taylor paths, and the batched/loop exact-oracle paths.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.linalg.norms import top_eigenvalue
from repro.linalg.psd import random_psd
from repro.operators import ConstraintCollection, DensePSDOperator, FactorizedPSDOperator
from repro.core.decision import DecisionOptions, decision_psdp
from repro.core.decision_phased import decision_psdp_phased
from repro.core.dotexp import ExactDotExpOracle, FastDotExpOracle
from repro.core.solver import SolverOptions, approx_psdp
from repro.problems.random_instances import random_packing_sdp

from helpers import factorized_family


def _factorized_collection(seed, m=12, n=8, scale=0.35):
    return factorized_family(seed, n=n, m=m, rank=2, scale=scale)


class TestHistoryNaNRegression:
    def test_min_max_values_are_finite(self, small_collection):
        result = decision_psdp(
            small_collection, epsilon=0.3, collect_history=True, max_iterations=5
        )
        assert result.history is not None
        assert len(result.history) > 0
        for record in result.history:
            assert np.isfinite(record.min_value)
            assert np.isfinite(record.max_value)
            assert record.min_value <= record.max_value


class TestOptionsNotMutated:
    def test_decision_options_epsilon_preserved(self, small_collection):
        opts = DecisionOptions(epsilon=0.25, max_iterations=4)
        decision_psdp(small_collection, epsilon=0.4, options=opts)
        assert opts.epsilon == 0.25

    def test_solver_options_epsilon_preserved(self, rng):
        problem = random_packing_sdp(3, 4, rng=rng)
        opts = SolverOptions(epsilon=0.5)
        approx_psdp(problem, epsilon=0.3, options=opts)
        assert opts.epsilon == 0.5


class TestTopEigenvalue:
    def test_matches_eigvalsh_small(self, rng):
        mat = random_psd(10, rng=rng, scale=3.0)
        assert top_eigenvalue(mat) == pytest.approx(float(np.linalg.eigvalsh(mat)[-1]))

    def test_matches_eigvalsh_above_cutoff(self, rng):
        mat = random_psd(90, rng=rng, scale=2.0)
        exact = float(np.linalg.eigvalsh(mat)[-1])
        assert top_eigenvalue(mat, rng=rng) == pytest.approx(exact, rel=1e-6)

    def test_matvec_callable(self, rng):
        mat = random_psd(80, rng=rng, scale=1.5)
        exact = float(np.linalg.eigvalsh(mat)[-1])
        est = top_eigenvalue(lambda v: mat @ v, dim=80, rng=rng)
        assert est == pytest.approx(exact, rel=1e-6)

    def test_requires_dim_for_callable(self):
        with pytest.raises(ValueError):
            top_eigenvalue(lambda v: v)

    def test_zero_dimension(self):
        assert top_eigenvalue(np.zeros((0, 0))) == 0.0


class TestPackedDecisionEquivalence:
    def test_same_certified_outcome_fixed_seed(self):
        results = {}
        for packed in (True, False):
            coll = _factorized_collection(20120522)
            oracle = FastDotExpOracle(coll, eps=0.05, rng=99, packed=packed)
            results[packed] = decision_psdp(coll, epsilon=0.2, oracle=oracle, rng=99)
        assert results[True].outcome == results[False].outcome
        assert results[True].iterations == results[False].iterations
        np.testing.assert_allclose(
            results[True].dual_x, results[False].dual_x, rtol=1e-6, atol=1e-12
        )

    def test_fast_oracle_string_uses_packed_view(self):
        coll = _factorized_collection(7)
        assert coll.packed_view is None
        result = decision_psdp(coll, epsilon=0.25, oracle="fast", rng=3, max_iterations=8)
        assert coll.packed_view is not None
        assert result.outcome is not None

    def test_exact_oracle_leaves_dense_collection_unpacked(self, small_collection):
        # Dense collections have eigh-derived (inexact) factors, so the
        # exact oracle's batched pass must not pack them.
        decision_psdp(small_collection, epsilon=0.3, max_iterations=4)
        assert small_collection.packed_view is None

    def test_exact_oracle_packs_exact_factor_collection(self):
        coll = _factorized_collection(41)
        assert coll.packed_view is None
        decision_psdp(coll, epsilon=0.3, max_iterations=4)
        assert coll.packed_view is not None

    def test_blocked_taylor_same_certified_outcome_fixed_seed(self):
        """Blocked kernel vs per-term recurrence: same polynomial, same
        sketch draws, so the certified decision must be identical."""
        results = {}
        for blocked in (True, False):
            coll = _factorized_collection(20120522)
            oracle = FastDotExpOracle(coll, eps=0.05, rng=99, blocked=blocked)
            results[blocked] = decision_psdp(coll, epsilon=0.2, oracle=oracle, rng=99)
        assert results[True].outcome == results[False].outcome
        assert results[True].iterations == results[False].iterations
        np.testing.assert_allclose(
            results[True].dual_x, results[False].dual_x, rtol=1e-6, atol=1e-12
        )

    def test_history_collection_does_not_perturb_oracle_stream(self):
        """The eigenvalue estimator spawns its own generator, so turning
        history on (which estimates lambda_max every iteration) must not
        change the oracle's sketch draws or the certified outcome."""
        results = {}
        for collect in (True, False):
            coll = _factorized_collection(31)
            oracle = FastDotExpOracle(coll, eps=0.05, rng=np.random.default_rng(5))
            results[collect] = decision_psdp(
                coll, epsilon=0.2, oracle=oracle, rng=np.random.default_rng(5),
                collect_history=collect,
            )
        assert results[True].outcome == results[False].outcome
        assert results[True].iterations == results[False].iterations
        np.testing.assert_array_equal(results[True].dual_x, results[False].dual_x)


class TestExactOracleBatchedEquivalence:
    """The packed batched trace-product pass vs the seed per-constraint loop."""

    @pytest.mark.parametrize("seed", [20120522, 7, 1201])
    def test_same_certified_outcome_fixed_seed(self, seed):
        results = {}
        for batched in (True, False):
            coll = _factorized_collection(seed)
            oracle = ExactDotExpOracle(coll, batched=batched)
            results[batched] = decision_psdp(coll, epsilon=0.2, oracle=oracle)
        assert results[True].outcome == results[False].outcome
        assert results[True].iterations == results[False].iterations
        np.testing.assert_allclose(
            results[True].dual_x, results[False].dual_x, rtol=1e-9, atol=1e-13
        )

    def test_work_depth_accounting_preserved(self):
        """One batched GEMM must charge the tracker exactly what the mapped
        per-constraint loop charged: same work, same depth."""
        reports = {}
        for batched in (True, False):
            coll = _factorized_collection(12)
            oracle = ExactDotExpOracle(coll, batched=batched)
            reports[batched] = decision_psdp(
                coll, epsilon=0.25, oracle=oracle, max_iterations=6
            ).work_depth
        assert reports[True].by_label.get("constraint-dots") == pytest.approx(
            reports[False].by_label.get("constraint-dots")
        )

    def test_batched_false_bypasses_existing_packed_view(self, monkeypatch):
        """batched=False must run the per-constraint loop even when another
        consumer already built the collection's packed view."""
        coll = _factorized_collection(6)
        coll.packed()  # e.g. a fast oracle packed it earlier

        def _fail(self, weight_matrix):  # pragma: no cover - must not run
            raise AssertionError("packed dots used despite batched=False")

        from repro.operators.packed import PackedGramFactors

        monkeypatch.setattr(PackedGramFactors, "dots", _fail)
        oracle = ExactDotExpOracle(coll, batched=False)
        x = np.ones(8) / 8
        psi = sum(w * op.to_dense() for w, op in zip(x, coll.operators))
        output = oracle(psi, x)
        assert np.all(np.isfinite(output.values))

    def test_batched_dots_match_loop(self):
        coll_a = _factorized_collection(5)
        coll_b = _factorized_collection(5)
        x = np.ones(8) / 8
        out_loop = ExactDotExpOracle(coll_a, batched=False)(coll_a.weighted_sum(x), x)
        out_fast = ExactDotExpOracle(coll_b, batched=True)(coll_b.weighted_sum(x), x)
        np.testing.assert_allclose(out_fast.values, out_loop.values, rtol=1e-10, atol=1e-14)


class TestPhasedSolverThreading:
    def test_phased_fast_oracle_runs_blocked_path(self):
        coll = _factorized_collection(9)
        result = decision_psdp_phased(
            coll, epsilon=0.25, oracle="fast", rng=4, max_iterations=10
        )
        assert coll.packed_view is not None
        assert result.outcome is not None

    def test_phased_history_does_not_perturb_outcome(self):
        results = {}
        for collect in (True, False):
            coll = _factorized_collection(13)
            results[collect] = decision_psdp_phased(
                coll, epsilon=0.25, rng=8, collect_history=collect, max_iterations=12
            )
        assert results[True].outcome == results[False].outcome
        assert results[True].iterations == results[False].iterations


class TestDenseStackWeightedSum:
    def _dense_collection(self, seed, n=7, m=10):
        rng = np.random.default_rng(seed)
        mats = []
        for _ in range(n):
            q = rng.standard_normal((m, 3))
            mats.append(DensePSDOperator(q @ q.T))
        return ConstraintCollection(mats, validate=False)

    def test_matches_loop_full_support(self):
        coll = self._dense_collection(1)
        weights = np.random.default_rng(2).random(len(coll))
        expected = np.zeros((coll.dim, coll.dim))
        for w, op in zip(weights, coll.operators):
            expected += w * op.to_dense()
        np.testing.assert_allclose(coll.weighted_sum(weights), expected, atol=1e-12)

    def test_matches_loop_sparse_support(self):
        coll = self._dense_collection(3)
        weights = np.zeros(len(coll))
        weights[2] = 0.7
        expected = 0.7 * coll.operators[2].to_dense()
        np.testing.assert_allclose(coll.weighted_sum(weights), expected, atol=1e-13)

    def test_zero_weights(self):
        coll = self._dense_collection(4)
        np.testing.assert_array_equal(
            coll.weighted_sum(np.zeros(len(coll))),
            np.zeros((coll.dim, coll.dim)),
        )

    def test_stack_is_cached_and_gated(self):
        coll = self._dense_collection(5)
        coll.weighted_sum(np.ones(len(coll)))
        assert coll._dense_stack is not None
        mixed = ConstraintCollection(
            [coll.operators[0], np.ones(10)], validate=False
        )  # diagonal operator present -> no dense stack
        mixed.weighted_sum(np.ones(2))
        assert mixed._dense_stack is None


def _concentrated_sparse_collection(seed=31, m=60, n=40, support=10, col_nnz=8):
    """Sparse factorized constraints whose supports share `support` rows, the
    regime where the exact Psi pattern beats every other representation."""
    import scipy.sparse as sp

    rng = np.random.default_rng(seed)
    ops = []
    for _ in range(n):
        dense = np.zeros((m, 2))
        for c in range(2):
            rows = rng.choice(support, size=col_nnz, replace=False)
            dense[rows, c] = 0.3 * rng.standard_normal(col_nnz)
        if not np.any(dense):
            dense[0, 0] = 0.3
        ops.append(FactorizedPSDOperator(sp.csr_matrix(dense)))
    return ConstraintCollection(ops)


class TestTaylorEngineRegressions:
    """The rank-adaptive engine must update incrementally — one full build,
    then work proportional to the active columns — and certify the same
    decisions as the PR-2 per-call kernel on fixed seeds."""

    def test_gram_engine_charges_proportional_work(self):
        coll = _factorized_collection(seed=41, m=40, n=10)  # R = 20 <= m/2
        result = decision_psdp(
            coll,
            epsilon=0.25,
            oracle="fast",
            rng=3,
            max_iterations=25,
            collect_history=True,
        )
        stats = result.metadata["taylor_engine"]
        assert stats["mode"] == "gram"
        assert stats["full_builds"] == 1
        assert stats["incremental_updates"] == result.iterations - 1
        # Every oracle call after the first sees exactly the coordinates the
        # previous iteration multiplied (rank 2 each): the engine's touched
        # columns must equal the solver's per-iteration update counts — a
        # full rebuild would touch all R columns every time.
        history_updates = [rec.updated for rec in result.history]
        assert stats["columns_updated"] == 2 * sum(history_updates[:-1])
        # The tracker's label records the same charges: full Gram build plus
        # the exact per-column update rate (R per touched column).
        charged = result.work_depth.by_label["taylor-engine-update"]
        assert charged == pytest.approx(stats["charged_work"])
        total_rank = stats["total_rank"]
        full_build = 40 * total_rank**2 + total_rank**2
        assert charged == pytest.approx(
            full_build + total_rank * stats["columns_updated"]
        )

    def test_sparse_psi_engine_charges_proportional_work(self):
        coll = _concentrated_sparse_collection()
        result = decision_psdp(
            coll,
            epsilon=0.25,
            oracle="fast",
            rng=5,
            max_iterations=20,
            collect_history=True,
        )
        stats = result.metadata["taylor_engine"]
        assert stats["mode"] == "sparse-psi"
        assert stats["full_builds"] == 1
        assert stats["incremental_updates"] == result.iterations - 1
        history_updates = [rec.updated for rec in result.history]
        assert stats["columns_updated"] == 2 * sum(history_updates[:-1])
        acc = coll.packed().psi_accumulator()
        charged = result.work_depth.by_label["taylor-engine-update"]
        assert charged == pytest.approx(stats["charged_work"])
        # Every incremental update costs at most one pass over the
        # weight-to-values map; proportionality caps the total at the
        # per-column map density times the touched columns.
        incremental = charged - acc.map_nnz  # full build = one map pass
        per_column_cap = acc.map_nnz / stats["total_rank"]
        assert incremental <= per_column_cap * stats["columns_updated"] * 1.0001

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_engine_and_legacy_kernel_certify_identical_decisions(self, seed):
        outcomes = {}
        for engine in (True, False):
            coll = _factorized_collection(seed=seed, m=16, n=10)
            oracle = FastDotExpOracle(coll, eps=0.08, rng=seed + 100, engine=engine)
            result = decision_psdp(
                coll, epsilon=0.3, oracle=oracle, rng=seed + 100, max_iterations=40
            )
            outcomes[engine] = result
        assert outcomes[True].outcome == outcomes[False].outcome
        assert outcomes[True].iterations == outcomes[False].iterations
        np.testing.assert_allclose(
            outcomes[True].dual_x, outcomes[False].dual_x, rtol=1e-6
        )

    def test_phased_solver_surfaces_engine_stats(self):
        coll = _factorized_collection(seed=43, m=40, n=10)
        result = decision_psdp_phased(
            coll, epsilon=0.3, oracle="fast", rng=7, max_iterations=15
        )
        stats = result.metadata["taylor_engine"]
        assert stats["full_builds"] == 1
        assert stats["mode"] == "gram"
        assert result.work_depth.by_label["taylor-engine-update"] == pytest.approx(
            stats["charged_work"]
        )

    def test_exact_oracle_has_no_engine_metadata(self, small_collection):
        result = decision_psdp(small_collection, epsilon=0.3, max_iterations=4)
        assert "taylor_engine" not in result.metadata


def _counting_expm(monkeypatch, modules):
    """Replace expm_normalized in the given solver modules with a counter."""
    from repro.linalg.expm import expm_normalized as real

    counter = {"calls": 0}

    def counting(psi):
        counter["calls"] += 1
        return real(psi)

    for module in modules:
        monkeypatch.setattr(module, "expm_normalized", counting)
    return counter


class TestMatrixFreeRegressions:
    """The E14 matrix-free core: fixed-seed equivalence against the dense
    state, the zero-materialisation discipline, and the lazy primal build."""

    def test_dense_and_implicit_states_certify_identical_decisions(self):
        # m = 96 keeps both states on the Lanczos (not eigvalsh) regime.
        results = {}
        for mode in ("dense", "implicit"):
            coll = _factorized_collection(seed=20120522, m=96, n=12)
            oracle = FastDotExpOracle(coll, eps=0.05, rng=17)
            results[mode] = decision_psdp(
                coll,
                epsilon=0.2,
                oracle=oracle,
                rng=17,
                psi_state=mode,
                collect_history=True,
                max_iterations=20,
                certificate_check_every=5,
            )
        dense, implicit = results["dense"], results["implicit"]
        assert dense.metadata["psi_state"]["mode"] == "dense"
        assert implicit.metadata["psi_state"]["mode"] == "implicit"
        assert dense.outcome == implicit.outcome
        assert dense.iterations == implicit.iterations
        np.testing.assert_allclose(dense.dual_x, implicit.dual_x, rtol=1e-8, atol=1e-12)
        # Per-iteration lambda_max: dense Lanczos on the materialised Psi vs
        # warm-started Lanczos through the factored matvec.
        lam_dense = np.array([r.psi_lambda_max for r in dense.history])
        lam_implicit = np.array([r.psi_lambda_max for r in implicit.history])
        np.testing.assert_allclose(lam_implicit, lam_dense, rtol=1e-8, atol=1e-8)

    def test_auto_mode_selects_implicit_for_fast_oracle(self):
        coll = _factorized_collection(seed=3, m=20, n=8)
        result = decision_psdp(coll, epsilon=0.25, oracle="fast", rng=5, max_iterations=6)
        assert result.metadata["psi_state"]["mode"] == "implicit"
        exact = decision_psdp(
            _factorized_collection(seed=3, m=20, n=8), epsilon=0.25, max_iterations=6
        )
        assert exact.metadata["psi_state"]["mode"] == "dense"

    def test_fast_path_performs_zero_materialisations_and_expm(self, monkeypatch):
        """A fast-path solve with history + certificate checks enabled must
        run zero expm_normalized calls and zero dense Psi materialisations
        — until (and unless) primal_y is read, which triggers exactly one
        of each."""
        import repro.core.decision as decision_mod

        counter = _counting_expm(monkeypatch, [decision_mod])
        coll = _factorized_collection(seed=8, m=96, n=10)
        result = decision_psdp(
            coll,
            epsilon=0.2,
            oracle="fast",
            rng=11,
            collect_history=True,
            certificate_check_every=3,
            max_iterations=12,
        )
        stats = result.metadata["psi_state"]
        assert stats["mode"] == "implicit"
        assert stats["densifies"] == 0
        assert counter["calls"] == 0
        assert result.counters.eigendecompositions == 0
        assert result.history is not None and len(result.history) == result.iterations
        assert all(np.isfinite(r.psi_lambda_max) for r in result.history)
        if result.outcome.name == "PRIMAL":
            # Reading primal_y runs the one deferred densify + expm.
            y = result.primal_y
            assert counter["calls"] == 1
            assert np.trace(y) == pytest.approx(1.0, abs=1e-8)
            # The builder replaces the sketched estimate with exact dots.
            exact_min = float(coll.dots(y).min())
            assert result.primal_min_dot == pytest.approx(exact_min)
            # Cached: a second read builds nothing.
            assert result.primal_y is y
            assert counter["calls"] == 1
        else:
            assert result.primal_y is None
            assert counter["calls"] == 0

    def test_fast_path_dual_outcome_never_builds_primal(self, monkeypatch):
        import repro.core.decision as decision_mod

        counter = _counting_expm(monkeypatch, [decision_mod])
        rng = np.random.default_rng(2)
        coll = ConstraintCollection(
            [FactorizedPSDOperator(0.05 * rng.standard_normal((16, 2))) for _ in range(6)]
        )
        result = decision_psdp(coll, epsilon=0.25, oracle="fast", rng=4)
        assert result.outcome.name == "DUAL"
        assert result.primal_y is None
        assert counter["calls"] == 0
        assert result.metadata["psi_state"]["densifies"] == 0

    def test_phased_fast_path_is_matrix_free(self, monkeypatch):
        import repro.core.decision_phased as phased_mod

        counter = _counting_expm(monkeypatch, [phased_mod])
        coll = _factorized_collection(seed=9, m=96, n=10)
        result = decision_psdp_phased(
            coll, epsilon=0.25, oracle="fast", rng=6, max_iterations=12
        )
        assert result.metadata["psi_state"]["mode"] == "implicit"
        assert result.metadata["psi_state"]["densifies"] == 0
        assert counter["calls"] == 0
        # The phased solver always carries a primal candidate: reading it
        # triggers the one deferred build.
        y = result.primal_y
        assert y is not None
        assert counter["calls"] == 1
        assert np.trace(y) == pytest.approx(1.0, abs=1e-8)

    def test_phased_dense_and_implicit_agree(self):
        results = {}
        for mode in ("dense", "implicit"):
            coll = _factorized_collection(seed=12, m=40, n=10)
            oracle = FastDotExpOracle(coll, eps=0.05, rng=21)
            results[mode] = decision_psdp_phased(
                coll, epsilon=0.25, oracle="fast", rng=21, psi_state=mode,
                max_iterations=15,
            )
        assert results["dense"].outcome == results["implicit"].outcome
        assert results["dense"].iterations == results["implicit"].iterations
        np.testing.assert_allclose(
            results["dense"].dual_x, results["implicit"].dual_x, rtol=1e-8
        )

    def test_measured_eig_charges_replace_constant(self):
        """Certificate-check/dual-rescale work is charged from measured
        Lanczos sweeps — orders of magnitude below the old m^2 * maxiter
        pessimistic constant."""
        from repro.config import get_config

        coll = _factorized_collection(seed=13, m=96, n=10)
        result = decision_psdp(
            coll, epsilon=0.2, oracle="fast", rng=9,
            certificate_check_every=3, max_iterations=12,
        )
        m = 96
        old_constant = m * m * min(m, get_config().power_iteration_maxiter)
        rescale = result.work_depth.by_label["dual-rescale"]
        assert 0 < rescale < old_constant

    def test_fast_oracle_accepts_psi_none(self):
        coll = _factorized_collection(seed=14)
        oracle = FastDotExpOracle(coll, eps=0.1, rng=2)
        x = np.full(len(coll), 1.0 / len(coll))
        out_none = oracle(None, x)
        assert np.all(np.isfinite(out_none.values))
        out_kw = FastDotExpOracle(_factorized_collection(seed=14), eps=0.1, rng=2)(x=x)
        np.testing.assert_array_equal(out_none.values, out_kw.values)
        with pytest.raises(Exception):
            oracle(None)  # x is required

    def test_exact_oracle_rejects_psi_none(self):
        from repro.exceptions import InvalidProblemError

        coll = _factorized_collection(seed=15)
        oracle = ExactDotExpOracle(coll)
        with pytest.raises(InvalidProblemError):
            oracle(None, np.full(len(coll), 0.1))

    def test_forced_implicit_state_on_exact_oracle_collection(self):
        # psi_state="implicit" is honoured whenever the factors are exact,
        # even if auto would have chosen dense (the oracle needs psi, so
        # the exact oracle cannot run on it — use the fast oracle).
        coll = _factorized_collection(seed=16, m=30, n=8)
        oracle = FastDotExpOracle(coll, eps=0.08, rng=3, packed=True)
        result = decision_psdp(
            coll, epsilon=0.25, oracle=oracle, rng=3, psi_state="implicit",
            max_iterations=8,
        )
        assert result.metadata["psi_state"]["mode"] == "implicit"


def _trace_collection(seed, m, n, kind="lowrank", rank=2, density=0.05):
    """Factorized families for the E15 structured-trace regressions."""
    import scipy.sparse as sp

    rng = np.random.default_rng(seed)
    scale = 1.0 / np.sqrt(m)
    ops = []
    for _ in range(n):
        if kind == "lowrank":
            ops.append(FactorizedPSDOperator(scale * rng.standard_normal((m, rank))))
        else:
            factor = sp.random(m, rank, density=density, random_state=rng, format="csr")
            if factor.nnz == 0:
                factor = sp.csr_matrix(
                    (np.full(rank, scale), (rng.integers(0, m, rank), np.arange(rank))),
                    shape=(m, rank),
                )
            ops.append(FactorizedPSDOperator(factor * (scale / np.sqrt(density))))
    return ConstraintCollection(ops, validate=False)


class TestStructuredTraceRegressions:
    """The E15 structured trace estimator: fixed-seed decision equivalence
    against the identity-push reference and the zero-full-identity-apply
    discipline on the ``m >= 512`` degenerate-sketch grid."""

    def _solve(self, seed, m, n, kind, trace_mode, cap=8):
        coll = _trace_collection(seed, m, n, kind=kind)
        oracle = FastDotExpOracle(coll, eps=0.1, rng=seed, trace_mode=trace_mode)
        result = decision_psdp(
            coll,
            epsilon=0.2,
            oracle=oracle,
            rng=seed,
            max_iterations=cap,
            collect_history=True,
            certificate_check_every=4,
        )
        return result, oracle

    @pytest.mark.parametrize(
        "m,n,kind",
        [
            (512, 8, "lowrank"),   # gram trace mode (2R << m)
            (512, 120, "sparse"),  # gram trace mode on a sparse stack
        ],
    )
    def test_m512_degenerate_solves_zero_identity_applies(self, m, n, kind):
        result, oracle = self._solve(11, m, n, kind, "auto")
        assert oracle.counters.extra.get("identity_taylor_applies", 0) == 0
        stats = result.metadata["trace_estimator"]
        assert stats["identity_fallbacks"] == 0
        assert stats["calls"] == result.iterations
        assert stats["mode"] in ("gram", "deflated")

    @pytest.mark.parametrize(
        "m,n,kind",
        [
            (512, 8, "lowrank"),
            (256, 80, "lowrank"),  # 2R > 1.1m: deflated trace mode
            (512, 120, "sparse"),
        ],
    )
    def test_structured_and_identity_certify_identical_decisions(self, m, n, kind):
        new, oracle_new = self._solve(13, m, n, kind, "auto")
        ref, oracle_ref = self._solve(13, m, n, kind, "identity")
        assert oracle_ref.trace_estimator is None
        assert new.outcome == ref.outcome
        assert new.iterations == ref.iterations
        np.testing.assert_allclose(new.dual_x, ref.dual_x, rtol=1e-6, atol=1e-10)
        # The reference run pushed one identity per oracle call; the
        # structured run pushed none.
        assert oracle_ref.counters.extra["identity_taylor_applies"] == ref.iterations
        assert oracle_new.counters.extra.get("identity_taylor_applies", 0) == 0

    def test_deflated_mode_selected_past_gram_gate(self):
        result, oracle = self._solve(17, 256, 80, "lowrank", "auto", cap=5)
        assert result.metadata["trace_estimator"]["mode"] == "deflated"
        assert oracle.counters.extra.get("identity_taylor_applies", 0) == 0

    def test_oracle_work_charge_shrinks_with_structured_trace(self):
        new, _ = self._solve(19, 512, 8, "lowrank", "auto", cap=4)
        ref, _ = self._solve(19, 512, 8, "lowrank", "identity", cap=4)
        work_new = sum(r.oracle_work for r in new.history)
        work_ref = sum(r.oracle_work for r in ref.history)
        assert work_new < 0.5 * work_ref

    def test_phased_solver_surfaces_trace_stats(self):
        coll = _trace_collection(23, 256, 8)
        oracle = FastDotExpOracle(coll, eps=0.1, rng=23)
        result = decision_psdp_phased(
            coll, epsilon=0.25, oracle=oracle, rng=23, max_iterations=8
        )
        stats = result.metadata["trace_estimator"]
        assert stats["mode"] == "gram"
        assert stats["identity_fallbacks"] == 0
        assert oracle.counters.extra.get("identity_taylor_applies", 0) == 0

    def test_exact_oracle_has_no_trace_metadata(self, small_collection):
        result = decision_psdp(small_collection, epsilon=0.3, max_iterations=4)
        assert "trace_estimator" not in result.metadata
