"""Batched-equivalence suite for :func:`repro.core.batch.solve_many`.

The contract under test: ``solve_many(problems, options)[i]`` is
*bit-identical* to ``decision_psdp(problems[i], options=replace(options,
rng=instance_rng(options.rng, i)))`` — same outcome, iteration count,
certificate arrays, counters and metadata — regardless of batch size,
batch composition, exit order, or whether the instance rode the fused
lockstep path or fell back to a plain sequential solve.

Collections are constructed fresh for every solve (the Taylor engine
caches per collection), so batched and sequential runs never share
mutable state.
"""

from __future__ import annotations

import dataclasses

import numpy as np
import pytest
import scipy.sparse as sp

from repro import DecisionOptions, decision_psdp, solve_many
from repro.core.batch import _fused_key, instance_rng
from repro.core.decision import resolve_decision_options
from repro.core.result import DecisionOutcome, SolveStatus
from repro.linalg.psd import random_psd
from repro.operators import (
    ConstraintCollection,
    DensePSDOperator,
    DiagonalPSDOperator,
    FactorizedPSDOperator,
    LowRankPSDOperator,
)

from helpers import assert_results_identical, factorized_family

FAST = dict(oracle="fast", epsilon=0.25, rng=0, max_iterations=40)


def fast_opts(**overrides) -> DecisionOptions:
    return DecisionOptions(**{**FAST, **overrides})


def fused_family(seed, m=32, n=8):
    """Rank-2 Gaussian factors inside every fused-path gate (m <= 64,
    2R <= 1.1 m, gram trace/taylor modes)."""
    return factorized_family(seed, n=n, m=m, rank=2, scale=0.35)


def fallback_family(seed):
    """m=24, R=16: 2R > 1.1 m fails the gram gate, so solve_many must take
    the sequential fallback."""
    return factorized_family(seed, n=8, m=24, rank=2, scale=0.35)


def infeasible_family(seed, m=32, n=8):
    """Scale 50 factors: every first-iteration value lands above 1 + eps,
    so no constraint qualifies and the solver exits PRIMAL at t=1."""
    return factorized_family(seed, n=n, m=m, rank=2, scale=50.0)


def dense_family(seed, m=12, n=6):
    rng = np.random.default_rng(seed)
    return ConstraintCollection(
        [DensePSDOperator(random_psd(m, rng=rng, scale=0.4)) for _ in range(n)]
    )


def diagonal_family(seed, m=16, n=6):
    rng = np.random.default_rng(seed)
    return ConstraintCollection(
        [DiagonalPSDOperator(rng.random(m) + 0.1) for _ in range(n)]
    )


def lowrank_family(seed, m=32, n=6):
    rng = np.random.default_rng(seed)
    return ConstraintCollection(
        [LowRankPSDOperator(0.4 * rng.standard_normal((m, 2))) for _ in range(n)]
    )


def sparse_family(seed, m=32, n=6):
    rng = np.random.default_rng(seed)
    ops = []
    for _ in range(n):
        dense = np.zeros((m, 2))
        dense[rng.integers(0, m, size=4), rng.integers(0, 2, size=4)] = 0.5
        ops.append(FactorizedPSDOperator(sp.csr_matrix(dense)))
    return ConstraintCollection(ops)


def sequential_reference(factory, opts, index):
    """The sequential solve a batched instance must reproduce bitwise."""
    return decision_psdp(
        factory(), options=dataclasses.replace(opts, rng=instance_rng(opts.rng, index))
    )


def assert_batch_matches(factories, opts, results=None):
    """solve_many over fresh collections == per-index sequential solves."""
    if results is None:
        results = solve_many([f() for f in factories], options=opts)
    assert len(results) == len(factories)
    for i, factory in enumerate(factories):
        assert_results_identical(
            results[i], sequential_reference(factory, opts, i), label=f"instance {i}"
        )
    return results


class TestInstanceRng:
    def test_deterministic_and_index_separated(self):
        a = np.random.default_rng(instance_rng(0, 3)).standard_normal(4)
        b = np.random.default_rng(instance_rng(0, 3)).standard_normal(4)
        c = np.random.default_rng(instance_rng(0, 4)).standard_normal(4)
        assert np.array_equal(a, b)
        assert not np.array_equal(a, c)

    def test_base_rng_not_consumed(self):
        # Deriving child streams must not advance or mutate the base: the
        # same (rng, index) pair always lands on the same child.
        base = np.random.SeedSequence(11)
        first = instance_rng(base, 2)
        instance_rng(base, 0)
        instance_rng(base, 1)
        again = instance_rng(base, 2)
        assert first.entropy == again.entropy
        assert first.spawn_key == again.spawn_key

    def test_accepts_generator_seedsequence_int_and_none(self):
        for rng in (np.random.default_rng(5), np.random.SeedSequence(5), 5, None):
            child = instance_rng(rng, 1)
            assert isinstance(child, np.random.SeedSequence)
            assert child.spawn_key[-1] == 1


class TestFusedEligibility:
    """Guard the intended coverage: the sweep families exercise both paths."""

    def _opts(self):
        return resolve_decision_options(None, None, dict(FAST))

    def test_fused_families_take_the_fused_path(self):
        opts = self._opts()
        assert _fused_key(opts, fused_family(0)) is not None
        assert _fused_key(opts, fused_family(0, m=48)) is not None
        assert _fused_key(opts, lowrank_family(0)) is not None

    def test_fallback_families_take_the_sequential_path(self):
        opts = self._opts()
        for factory in (fallback_family, dense_family, diagonal_family, sparse_family):
            assert _fused_key(opts, factory(0)) is None


class TestBatchedEquivalence:
    @pytest.mark.parametrize("batch_size", [1, 2, 7, 32])
    def test_fused_family_matches_sequential(self, batch_size):
        factories = [
            (lambda s=s: fused_family(s)) for s in range(batch_size)
        ]
        assert_batch_matches(factories, fast_opts())

    @pytest.mark.parametrize(
        "factory",
        [fused_family, fallback_family, dense_family, diagonal_family,
         lowrank_family, sparse_family],
        ids=["fused", "fallback-m24", "dense", "diagonal", "lowrank", "sparse"],
    )
    def test_operator_kind_matches_sequential(self, factory):
        factories = [(lambda s=s: factory(s)) for s in range(4)]
        assert_batch_matches(factories, fast_opts())

    def test_ragged_shapes_in_one_call(self):
        # Two fused groups of different shape, a gate fallback, and two
        # non-factorized fallbacks, all in one solve_many call: results
        # come back in input order, each bitwise-sequential.
        factories = [
            lambda: fused_family(1),
            lambda: fused_family(2, m=48),
            lambda: fallback_family(3),
            lambda: dense_family(4),
            lambda: lowrank_family(5),
            lambda: fused_family(6),
        ]
        assert_batch_matches(factories, fast_opts())

    def test_deferred_primal_builder_matches(self):
        factories = [(lambda s=s: fused_family(s)) for s in range(3)]
        results = assert_batch_matches(factories, fast_opts())
        for i, factory in enumerate(factories):
            reference = sequential_reference(factory, fast_opts(), i)
            if reference.outcome is DecisionOutcome.PRIMAL:
                assert np.array_equal(results[i].primal_y, reference.primal_y)
                assert results[i].primal_min_dot == reference.primal_min_dot

    def test_epsilon_and_overrides_resolve_like_decision_psdp(self):
        factories = [(lambda s=s: fused_family(s)) for s in range(3)]
        opts = fast_opts(epsilon=0.3)
        results = solve_many(
            [f() for f in factories], epsilon=0.3,
            oracle="fast", rng=0, max_iterations=40,
        )
        for i, factory in enumerate(factories):
            assert_results_identical(
                results[i], sequential_reference(factory, opts, i),
                label=f"instance {i}",
            )

    def test_empty_batch(self):
        assert solve_many([], options=fast_opts()) == []


class TestTerminationMasks:
    def test_exit_at_iteration_zero(self):
        # iteration_budget=0 exhausts before the first oracle call: every
        # instance must exit DUAL/BUDGET_EXHAUSTED at t=0.
        opts = fast_opts(iteration_budget=0)
        factories = [(lambda s=s: fused_family(s)) for s in range(4)]
        results = assert_batch_matches(factories, opts)
        for result in results:
            assert result.outcome is DecisionOutcome.DUAL
            assert result.status is SolveStatus.BUDGET_EXHAUSTED
            assert result.iterations == 0

    def test_all_infeasible_batch(self):
        # Every instance leaves the qualifying mask empty on iteration 1:
        # the whole batch exits PRIMAL(early) together.
        factories = [(lambda s=s: infeasible_family(s)) for s in range(5)]
        results = assert_batch_matches(factories, fast_opts())
        for result in results:
            assert result.outcome is DecisionOutcome.PRIMAL
            assert result.early_exit
            assert result.iterations == 1

    def test_single_survivor(self):
        # Six instances exit PRIMAL at t=1, one runs to the iteration cap:
        # the survivor iterates alone in a compacted batch of one.
        factories = [(lambda s=s: infeasible_family(s)) for s in range(6)]
        factories.insert(3, lambda: fused_family(9))
        results = assert_batch_matches(factories, fast_opts())
        iterations = sorted(r.iterations for r in results)
        assert iterations[:6] == [1] * 6
        assert iterations[-1] > 1


class TestCompositionInvariance:
    def test_result_independent_of_batchmates(self):
        # The same (problem, index) pair must produce the same bits no
        # matter which instances ride alongside — including batchmates
        # that exit on the first iteration.
        opts = fast_opts()
        composition_a = [
            lambda: fused_family(0),
            lambda: infeasible_family(1),
            lambda: fused_family(2),
        ]
        composition_b = [
            lambda: fused_family(0),
            lambda: fused_family(7, m=48),
            lambda: fused_family(2),
        ]
        results_a = solve_many([f() for f in composition_a], options=opts)
        results_b = solve_many([f() for f in composition_b], options=opts)
        for index in (0, 2):
            assert_results_identical(
                results_a[index], results_b[index], label=f"index {index}"
            )

    def test_exit_order_invariance(self):
        # Slot the long-running instance at every position among early
        # exiters: its bits must not depend on when batchmates leave.
        opts = fast_opts()
        reference = None
        for position in range(4):
            factories = [(lambda s=s: infeasible_family(s)) for s in range(3)]
            factories.insert(position, lambda: fused_family(4))
            results = solve_many([f() for f in factories], options=opts)
            survivor = results[position]
            assert survivor.iterations > 1
            if reference is None:
                reference = survivor
            else:
                for field in ("outcome", "iterations", "dual_value"):
                    assert getattr(survivor, field) == getattr(reference, field)
                assert np.array_equal(survivor.dual_x, reference.dual_x)
                assert survivor.counters.as_dict() == reference.counters.as_dict()
