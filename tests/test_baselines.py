"""Tests for the baseline solvers (Arora–Kale, Jain–Yao style, exact references)."""

from __future__ import annotations

import numpy as np
import pytest

from repro.exceptions import InvalidProblemError
from repro.linalg.psd import random_psd
from repro.operators.collection import ConstraintCollection
from repro.baselines import (
    arora_kale_packing,
    exact_packing_frank_wolfe,
    exact_packing_value,
    jain_yao_packing,
)
from repro.core.certificates import verify_dual
from repro.core.problem import NormalizedPackingSDP
from repro.problems.random_instances import random_packing_sdp, random_width_controlled_sdp


class TestExactSolvers:
    def test_single_constraint_closed_form(self, rng):
        """With one constraint the optimum is exactly 1 / ||A||_2."""
        mat = random_psd(4, rng=rng, scale=2.0)
        problem = NormalizedPackingSDP([mat])
        result = exact_packing_value(problem)
        assert result.value == pytest.approx(0.5, rel=1e-4)
        assert result.lambda_max <= 1.0 + 1e-8

    def test_identity_constraints_closed_form(self):
        """n copies of I/c: optimum is c (all weight splittable arbitrarily)."""
        problem = NormalizedPackingSDP([np.eye(3) * 0.5, np.eye(3) * 0.5])
        result = exact_packing_value(problem)
        assert result.value == pytest.approx(2.0, rel=1e-4)

    def test_diagonal_instance_matches_lp_reasoning(self):
        """Diagonal constraints decouple: optimum = min over rows of budget."""
        a = np.diag([1.0, 0.0])
        b = np.diag([0.0, 1.0])
        problem = NormalizedPackingSDP([a, b], validate=False)
        result = exact_packing_value(problem)
        assert result.value == pytest.approx(2.0, rel=1e-4)

    def test_solution_is_feasible(self, rng):
        problem = random_packing_sdp(4, 5, rng=rng)
        result = exact_packing_value(problem)
        cert = verify_dual(problem.constraints, result.x, tol=1e-6)
        assert cert.feasible

    def test_frank_wolfe_feasible_and_below_exact(self, rng):
        problem = random_packing_sdp(3, 4, rng=rng)
        fw = exact_packing_frank_wolfe(problem)
        exact = exact_packing_value(problem)
        cert = verify_dual(problem.constraints, fw.x, tol=1e-6)
        assert cert.feasible
        assert fw.value <= exact.value * 1.01 + 1e-9

    def test_frank_wolfe_nontrivial_value(self, rng):
        problem = random_packing_sdp(3, 4, rng=rng)
        fw = exact_packing_frank_wolfe(problem)
        lower, _ = problem.value_bounds()
        assert fw.value >= 0.5 * lower

    def test_rejects_zero_constraint(self):
        collection = ConstraintCollection([np.zeros((3, 3)), np.eye(3)], validate=False)
        with pytest.raises(InvalidProblemError):
            exact_packing_value(collection)


class TestAroraKale:
    def test_solution_feasible(self, rng):
        problem = random_packing_sdp(4, 4, rng=rng)
        result = arora_kale_packing(problem, epsilon=0.2)
        cert = verify_dual(problem.constraints, result.x, tol=1e-6)
        assert cert.feasible
        assert result.lambda_max <= 1.0 + 1e-6

    def test_width_reported(self, rng):
        problem = random_width_controlled_sdp(4, 4, width=16.0, rng=rng)
        result = arora_kale_packing(problem, epsilon=0.3)
        assert result.width == pytest.approx(16.0, rel=1e-6)

    def test_iterations_grow_with_width(self, rng):
        """The width-dependent baseline needs more rounds on wider instances
        to reach the same target value (the E5 phenomenon)."""
        narrow = random_width_controlled_sdp(4, 4, width=1.0, rng=np.random.default_rng(1))
        wide = random_width_controlled_sdp(4, 4, width=64.0, rng=np.random.default_rng(1))
        target = 0.5  # reachable on both
        res_narrow = arora_kale_packing(narrow, epsilon=0.3, target_value=target)
        res_wide = arora_kale_packing(wide, epsilon=0.3, target_value=target)
        assert res_wide.iterations > res_narrow.iterations

    def test_reaches_target_on_easy_instance(self, rng):
        problem = NormalizedPackingSDP([np.eye(3) * 0.1] * 3)
        result = arora_kale_packing(problem, epsilon=0.2, target_value=1.0)
        assert result.reached_target
        assert result.value >= 0.8

    def test_invalid_epsilon(self, rng):
        problem = random_packing_sdp(3, 3, rng=rng)
        with pytest.raises(InvalidProblemError):
            arora_kale_packing(problem, epsilon=0.0)

    def test_history_collection(self, rng):
        problem = random_packing_sdp(3, 3, rng=rng)
        result = arora_kale_packing(problem, epsilon=0.3, collect_history=True)
        assert len(result.history) == len(result.history)  # present (possibly empty)


class TestJainYao:
    def test_outputs_have_right_shapes(self, rng):
        problem = random_packing_sdp(4, 4, rng=rng)
        result = jain_yao_packing(problem, epsilon=0.3)
        assert result.primal_y.shape == (4, 4)
        assert result.dual_x.shape == (4,)
        assert result.iterations >= 1

    def test_dual_candidate_feasible(self, rng):
        problem = random_packing_sdp(4, 4, rng=rng)
        result = jain_yao_packing(problem, epsilon=0.3)
        cert = verify_dual(problem.constraints, result.dual_x, tol=1e-6)
        assert cert.feasible

    def test_primal_candidate_psd_unit_trace(self, rng):
        problem = random_packing_sdp(3, 4, rng=rng)
        result = jain_yao_packing(problem, epsilon=0.3)
        assert np.trace(result.primal_y) == pytest.approx(1.0, abs=1e-6)
        assert np.linalg.eigvalsh(result.primal_y)[0] >= -1e-9

    def test_terminates_when_covered(self):
        """On an instance where the uniform density already covers every
        constraint, the loop exits immediately."""
        problem = NormalizedPackingSDP([np.eye(3) * 10.0] * 2)
        result = jain_yao_packing(problem, epsilon=0.3)
        assert result.iterations == 1

    def test_invalid_epsilon(self, rng):
        problem = random_packing_sdp(3, 3, rng=rng)
        with pytest.raises(InvalidProblemError):
            jain_yao_packing(problem, epsilon=2.0)
