"""Shared pytest fixtures for the repro test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.backend import available_backends, get_array_backend
from repro.linalg.psd import random_psd
from repro.operators.collection import ConstraintCollection
from repro.core.problem import NormalizedPackingSDP


@pytest.fixture
def rng() -> np.random.Generator:
    """A deterministic random generator shared by tests."""
    return np.random.default_rng(20120522)


@pytest.fixture(params=available_backends())
def backend(request):
    """Every installed array backend, resolved to an instance.

    Parameterising over :func:`repro.backend.available_backends` makes the
    conformance suite self-extending: tests written against this fixture
    run NumPy-only where torch/CuPy are absent and pick the extra backends
    up automatically (no skip bookkeeping) where they are installed.
    """
    return get_array_backend(request.param)


@pytest.fixture
def small_psd(rng: np.random.Generator) -> np.ndarray:
    """A 5x5 full-rank PSD matrix with unit spectral norm."""
    return random_psd(5, rng=rng)


@pytest.fixture
def small_collection(rng: np.random.Generator) -> ConstraintCollection:
    """Four random 5x5 PSD constraints of varying scale."""
    mats = [random_psd(5, scale=s, rng=rng) for s in (0.5, 1.0, 1.5, 2.0)]
    return ConstraintCollection(mats)


@pytest.fixture
def small_problem(small_collection: ConstraintCollection) -> NormalizedPackingSDP:
    """A small normalized packing SDP used across solver tests."""
    return NormalizedPackingSDP(small_collection, name="fixture-problem")
